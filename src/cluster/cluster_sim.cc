#include "cluster_sim.hh"

#include <algorithm>

#include "base/logging.hh"
#include "loadgen/query_stream.hh"
#include "obs/observer.hh"

namespace deeprecsys {

std::vector<uint64_t>
machineMemoryBudgets(const std::vector<SimConfig>& machines)
{
    std::vector<uint64_t> budgets;
    budgets.reserve(machines.size());
    for (const SimConfig& machine : machines)
        budgets.push_back(machine.memoryBytes);
    return budgets;
}

namespace {

/** One machine's share of one in-flight query, as the driver sees it. */
struct PartRec
{
    uint64_t queryIdx = 0;
    uint32_t machine = 0;
    double embFraction = 1.0;  ///< local share of the embedding work
    double start = 0;          ///< machine admission time (observer only)
    bool leader = true;        ///< this part's machine leads the query

    enum class Kind
    {
        Whole,     ///< single-part dispatch (full replica path)
        FanEmb,    ///< fan-out embedding phase (local lookups only)
        FanDense,  ///< TwoStage second phase: leader dense stacks
    } kind = Kind::Whole;

    // --- fault/hedge bookkeeping (untouched on the fault-free path) ---
    /** partner value of an unhedged part. */
    static constexpr uint64_t kNoPartner = UINT64_MAX;

    /** The hedge twin racing for the same logical share, if any. */
    uint64_t partner = kNoPartner;

    /** Dispatch generation of the owning query this part belongs to;
     *  a mismatch against QueryState::gen marks the part stale (its
     *  dispatch was killed and the query re-presented). */
    uint32_t gen = 0;

    bool done = false;       ///< finished all local work
    bool cancelled = false;  ///< destroyed by a crash or staleness
    bool hedged = false;     ///< this part IS the hedge duplicate

    /** Tables this part covers (shard-aware fan-out only); hedging
     *  uses it to find another replica able to serve the share. */
    std::vector<uint32_t> tables;
};

/** The observer-facing name of a part kind. */
obs::PartStage
stageOf(PartRec::Kind kind)
{
    switch (kind) {
      case PartRec::Kind::Whole:    return obs::PartStage::Whole;
      case PartRec::Kind::FanEmb:   return obs::PartStage::FanEmb;
      case PartRec::Kind::FanDense: return obs::PartStage::FanDense;
    }
    return obs::PartStage::Whole;
}

/** Book-keeping for one in-flight query. */
struct QueryState
{
    double arrival = 0;
    uint32_t size = 0;
    uint32_t partsLeft = 0;
    uint32_t machine = 0;     ///< leader machine
    double joinTime = 0;      ///< latest part completion + return hop
    double leaderReady = 0;   ///< TwoStage: last pooled part at leader
    double quality = 1.0;     ///< answer quality (< 1 when degraded)
    uint32_t cls = 0;         ///< effective priority class
    uint32_t attempt = 0;     ///< retries scheduled so far
    uint32_t model = 0;       ///< mix model (0 on single-model tiers)
    bool measured = true;

    // --- fault/hedge bookkeeping (untouched on the fault-free path) ---
    uint32_t gen = 0;         ///< dispatch generation (bumped each present)
    uint32_t failovers = 0;   ///< failure-driven re-presentations so far
    uint32_t leaderEpoch = 0; ///< leader engine epoch at dispatch
    uint64_t firstPart = 0;   ///< parts[] index of this dispatch's first part
    uint32_t numParts = 0;    ///< fan-out width of this dispatch
    bool dead = false;        ///< killed by a failure (awaiting failover)
    /** The dispatch holds a committed TwoStage join-phase cost that
     *  must be released exactly once (JoinPhase admission or kill). */
    bool joinCommitted = false;
};

/** Live view the routing policy observes at each arrival. */
class LiveView final : public ClusterView
{
  public:
    LiveView(const std::vector<SimConfig>& configs,
             const std::vector<MachineEngine>& engines,
             const std::vector<uint64_t>& in_flight,
             const std::vector<double>& pending_join_cost,
             const std::vector<uint8_t>& down_mask,
             const size_t& up_count, size_t num_mix,
             const std::vector<uint64_t>& in_flight_by_model,
             const std::vector<double>& pending_join_by_model)
        : cfgs(configs), engines(engines), inFlight(in_flight),
          pendingJoinCost(pending_join_cost), down(down_mask),
          upCount(up_count), numMix(num_mix),
          inFlightByModel(in_flight_by_model),
          pendingJoinByModel(pending_join_by_model)
    {
    }

    size_t numMachines() const override { return engines.size(); }

    size_t
    inFlightQueries(size_t m) const override
    {
        return inFlight[m];
    }

    size_t
    queuedWork(size_t m) const override
    {
        return engines[m].queuedWork();
    }

    size_t
    queuedSamples(size_t m) const override
    {
        return engines[m].queuedSamples();
    }

    double
    queuedCostSeconds(size_t m) const override
    {
        return engines[m].queuedCostSeconds();
    }

    double
    pendingJoinCostSeconds(size_t m) const override
    {
        return pendingJoinCost[m];
    }

    bool
    hasGpu(size_t m) const override
    {
        return cfgs[m].policy.gpuEnabled && cfgs[m].gpu.has_value();
    }

    double
    speedFactor(size_t m) const override
    {
        return 1.0 / cfgs[m].slowdown;
    }

    bool accepting(size_t m) const override { return !down[m]; }

    bool
    allAccepting() const override
    {
        return upCount == engines.size();
    }

    // Per-model slices (multi-model tiers; the defaults degrade to
    // the totals when the driver keeps no per-model books).
    size_t numModels() const override { return numMix; }

    bool
    servesModel(size_t m, uint32_t model) const override
    {
        return cfgs[m].servesModel(model);
    }

    size_t
    inFlightQueriesOfModel(size_t m, uint32_t model) const override
    {
        return inFlightByModel.empty()
            ? inFlight[m]
            : inFlightByModel[m * numMix + model];
    }

    double
    queuedCostSecondsOfModel(size_t m, uint32_t model) const override
    {
        return engines[m].queuedCostSeconds(model);
    }

    double
    pendingJoinCostSecondsOfModel(size_t m, uint32_t model) const override
    {
        return pendingJoinByModel.empty()
            ? pendingJoinCost[m]
            : pendingJoinByModel[m * numMix + model];
    }

  private:
    const std::vector<SimConfig>& cfgs;
    const std::vector<MachineEngine>& engines;
    const std::vector<uint64_t>& inFlight;

    /** Driver-maintained committed TwoStage join-phase cost. */
    const std::vector<double>& pendingJoinCost;

    /** Driver-maintained crash mask (all up on the fault-free path). */
    const std::vector<uint8_t>& down;
    const size_t& upCount;

    /** Mix width and per-(machine, model) books; the vectors stay
     *  empty on single-model runs (slices fall back to totals). */
    const size_t numMix;
    const std::vector<uint64_t>& inFlightByModel;
    const std::vector<double>& pendingJoinByModel;
};

} // namespace

ClusterSimulator::ClusterSimulator(ClusterConfig config)
    : cfg(std::move(config))
{
    drs_assert(!cfg.machines.empty(), "cluster needs machines");
    for (const SimConfig& machine : cfg.machines)
        MachineEngine::validate(machine);
    if (!cfg.modelMix.empty()) {
        // Fraction rules are the trace splitter's (non-negative, sum
        // to 1); every mix model needs a binding somewhere or no
        // routing policy could legally place its queries.
        (void)splitCountByFraction(mixFractions(cfg.modelMix), 0);
        size_t max_served = 0;
        for (const SimConfig& machine : cfg.machines)
            max_served = std::max(max_served, machine.numModels());
        drs_assert(max_served >= cfg.modelMix.size(),
                   "no machine serves the mix's last model");
        if (cfg.modelMix.size() > 1 && cfg.sharding.has_value())
            drs_assert(cfg.sharding->models.size() == cfg.modelMix.size(),
                       "a multi-model sharded tier needs one table "
                       "namespace per mix model");
    }
    if (cfg.sharding.has_value()) {
        const ShardPlacement& placement = cfg.sharding->placement;
        drs_assert(placement.feasible(),
                   "cluster sharding needs a feasible placement");
        drs_assert(placement.numMachines() == cfg.machines.size(),
                   "placement machine count mismatch");
        drs_assert(cfg.sharding->tableSet.numTables ==
                       placement.numTables(),
                   "table-set model must match the placed tables");
        for (size_t m = 0; m < cfg.machines.size(); m++) {
            const uint64_t budget = cfg.machines[m].memoryBytes;
            drs_assert(budget == 0 ||
                           placement.bytesOnMachine(m) <= budget,
                       "placement exceeds a machine memory budget");
        }
    }
    if (cfg.faults.enabled()) {
        validateFaultPlan(cfg.faults);
        // Crashing a machine destroys its shard replicas for the
        // outage; refuse placements that cannot survive the plan's
        // declared tolerance (ShardPlacement availability validator).
        if (cfg.sharding.has_value() && cfg.faults.faultTolerance > 0)
            drs_assert(cfg.sharding->placement.replicatedFor(
                           cfg.faults.faultTolerance),
                       "placement replication below the declared "
                       "fault tolerance");
    }
    if (cfg.hedge.enabled()) {
        drs_assert(cfg.sharding.has_value(),
                   "hedged requests need a sharded tier (only fan-out "
                   "parts hedge)");
        drs_assert(cfg.hedge.delayFor(cfg.overload.deadlineSeconds) > 0.0,
                   "hedge delay must resolve positive (set delaySeconds "
                   "or a deadline for delayFraction)");
    }
}

ClusterResult
ClusterSimulator::run(const QueryTrace& trace, RoutingPolicy& policy) const
{
    ClusterResult result;
    result.perMachine.resize(cfg.machines.size());
    // Multi-model colocation: per-model books are kept only when the
    // config carries a mix, so single-model runs take no new branch
    // with observable state (bitwise-identical to the historical
    // driver; the differential suite pins it).
    const bool mixOn = !cfg.modelMix.empty();
    const size_t numMix = std::max<size_t>(1, cfg.modelMix.size());
    result.perModel.resize(cfg.modelMix.size());
    if (cfg.sharding.has_value()) {
        for (size_t m = 0; m < cfg.machines.size(); m++)
            result.perMachine[m].embBytesStored =
                cfg.sharding->placement.bytesOnMachine(m);
    }
    if (trace.empty())
        return result;

    const size_t warmup = warmupCount(cfg.warmupFraction, trace.size());
    result.fleetLatencySeconds.reserve(trace.size() - warmup);

    std::vector<QueryState> queries(trace.size());
    std::vector<PartRec> parts;
    parts.reserve(trace.size());

    std::vector<MachineEngine> machines;
    machines.reserve(cfg.machines.size());
    for (const SimConfig& machine : cfg.machines)
        machines.emplace_back(&machine, trace.front().arrivalSeconds);
    std::vector<uint64_t> inFlight(cfg.machines.size(), 0);
    // Per-(machine, model) flight and committed-join books of a mixed
    // tier, flattened [m * numMix + model]; empty (never touched) on
    // single-model runs.
    std::vector<uint64_t> inFlightByModel(
        mixOn ? cfg.machines.size() * numMix : 0, 0);
    std::vector<double> pendingJoinByModel(
        mixOn ? cfg.machines.size() * numMix : 0, 0.0);

    auto flight_add = [&](uint32_t m, uint32_t model) {
        inFlight[m]++;
        if (mixOn)
            inFlightByModel[m * numMix + model]++;
    };
    auto flight_sub = [&](uint32_t m, uint32_t model, const char* what) {
        drs_assert(inFlight[m] > 0, what);
        inFlight[m]--;
        if (mixOn) {
            drs_assert(inFlightByModel[m * numMix + model] > 0, what);
            inFlightByModel[m * numMix + model]--;
        }
    };

    EventQueue events;
    // Pre-size the heap: per machine at most one completion per busy
    // core plus one offload, plus forwarded parts in flight.
    size_t total_cores = 0;
    for (const SimConfig& machine : cfg.machines)
        total_cores += machine.cpu.platform().cores;
    events.reserve(std::min(trace.size(), total_cores + 256));
    std::vector<EngineEvent> scheduled;
    scheduled.reserve(256);

    // Committed-but-unqueued TwoStage join-phase cost per machine:
    // engine-exact (MachineEngine::joinPhaseCostSeconds added at
    // fan-out dispatch, the identical value subtracted when the phase
    // is admitted), maintained only when the admission estimator
    // consumes it so the disabled path stays the historical driver.
    std::vector<double> pendingJoinCost(cfg.machines.size(), 0.0);

    // Fault-injection state. When the plan is disabled every vector
    // stays at its identity value and no new branch is taken, so the
    // run is bitwise-identical to the fault-free driver.
    const bool faultsOn = cfg.faults.enabled();
    const bool hedgeOn = cfg.hedge.enabled();
    const double hedgeDelay =
        cfg.hedge.delayFor(cfg.overload.deadlineSeconds);
    std::vector<uint8_t> down(cfg.machines.size(), 0);
    std::vector<int> downDepth(cfg.machines.size(), 0);
    std::vector<int> grayDepth(cfg.machines.size(), 0);
    std::vector<int> netDepth(cfg.machines.size(), 0);
    std::vector<double> netFactor(cfg.machines.size(), 1.0);
    std::vector<uint32_t> engineEpoch(cfg.machines.size(), 0);
    size_t upCount = cfg.machines.size();
    std::vector<uint64_t> lostBuf;
    // Engines advanced by a crash may run ahead of lastEventTime; the
    // final utilization advance must not move their clocks backwards.
    double lastFaultAdvance = trace.front().arrivalSeconds;
    std::vector<FaultEvent> faultSchedule;
    if (faultsOn) {
        faultSchedule = buildFaultSchedule(
            cfg.faults, static_cast<uint32_t>(cfg.machines.size()),
            trace.front().arrivalSeconds, trace.back().arrivalSeconds);
        for (size_t i = 0; i < faultSchedule.size(); i++)
            events.push(faultSchedule[i].time, SimEvent::Kind::Fault,
                        faultSchedule[i].machine, i);
    }

    LiveView view(cfg.machines, machines, inFlight, pendingJoinCost,
                  down, upCount, numMix, inFlightByModel,
                  pendingJoinByModel);
    // Overload control: only constructed when enabled, so the disabled
    // path is the historical driver plus one boolean test per arrival.
    std::optional<AdmissionController> admission;
    if (cfg.overload.enabled()) {
        // A sharded tier serves roughly 1/N of a query's embedding
        // work per machine; tell the estimator so heavy queries are
        // not priced as if one machine ran the whole model.
        const double share = cfg.sharding
            ? 1.0 / static_cast<double>(cfg.machines.size())
            : 1.0;
        admission.emplace(cfg.overload, cfg.machines, share,
                          cfg.network, cfg.join);
    }
    const bool trackJoinCost =
        admission.has_value() && cfg.join == JoinModel::TwoStage;
    // Per-class accounting rides with deadline/goodput accounting.
    if (cfg.overload.enabled() && cfg.overload.deadlineSeconds > 0.0)
        result.overload.perClass.resize(cfg.overload.priorityClasses);
    auto class_stats = [&](uint32_t cls) -> ClassOverloadStats* {
        return result.overload.perClass.empty()
            ? nullptr
            : &result.overload.perClass[cls];
    };
    result.machineOfQuery.resize(trace.size());
    result.partMachinesOfQuery.resize(trace.size());

    MeasuredSpan span;
    double lastEventTime = trace.front().arrivalSeconds;

    if (obs_) {
        obs_->onRunStart(trace.front().arrivalSeconds, trace.size());
        policy.attachObserver(obs_);
    }

    auto admit_part = [&](uint64_t part_idx, const PartSpec& spec,
                          double now) {
        const uint32_t m = parts[part_idx].machine;
        scheduled.clear();
        machines[m].admit(spec, now, scheduled);
        events.pushAll(scheduled, m, engineEpoch[m]);
    };

    // A part reaches its machine (after the forward hop, if any).
    auto start_part = [&](uint64_t part_idx, double now) {
        if (obs_)
            parts[part_idx].start = now;
        const PartRec& part = parts[part_idx];
        const QueryState& q = queries[part.queryIdx];
        PartSpec spec;
        spec.partIdx = part_idx;
        spec.samples = q.size;
        spec.model = q.model;
        switch (part.kind) {
          case PartRec::Kind::Whole:
            break;    // full-model path, offload-eligible
          case PartRec::Kind::FanEmb:
            // Local embedding share only. Under the optimistic join
            // the leader also runs its dense stacks concurrently
            // here; under TwoStage the dense work waits for the join.
            spec.embFraction = part.embFraction;
            spec.leader = cfg.join == JoinModel::Optimistic &&
                part.leader;
            spec.whole = false;
            break;
          case PartRec::Kind::FanDense:
            spec.embFraction = 0.0;
            spec.leader = true;
            spec.whole = false;
            break;
        }
        admit_part(part_idx, spec, now);
    };

    auto complete_query = [&](uint64_t query_idx) {
        QueryState& q = queries[query_idx];
        result.numCompleted++;
        result.perMachine[q.machine].queriesCompleted++;
        if (mixOn)
            result.perModel[q.model].completed++;
        if (q.measured) {
            const double latency = q.joinTime - q.arrival;
            result.fleetLatencySeconds.add(latency);
            result.perMachine[q.machine].latencySeconds.add(latency);
            if (mixOn)
                result.perModel[q.model].latencySeconds.add(latency);
            span.onCompletion(q.joinTime);
            if (cfg.overload.deadlineSeconds > 0.0) {
                result.overload.measuredCompleted++;
                ClassOverloadStats* cs = class_stats(q.cls);
                if (cs)
                    cs->measuredCompleted++;
                if (latency <= cfg.overload.deadlineSeconds) {
                    result.overload.completedWithinDeadline++;
                    result.overload.qualityWeight += q.quality;
                    if (cs) {
                        cs->completedWithinDeadline++;
                        cs->qualityWeight += q.quality;
                    }
                }
            }
        }
        lastEventTime = std::max(lastEventTime, q.joinTime);
        if (obs_) {
            const double back = cfg.network.oneWaySeconds(
                static_cast<double>(q.size) *
                cfg.network.responseBytesPerSample);
            obs_->onQueryComplete(query_idx, q.joinTime, back);
        }
    };

    // A part finished all of its local work.
    auto finish_part = [&](uint64_t part_idx, double now, bool gpu) {
        PartRec& part = parts[part_idx];
        if (obs_) {
            obs_->onPartDone(
                part.queryIdx, part.machine, stageOf(part.kind),
                part.leader, gpu, part.start,
                machines[part.machine].lastFinishedFirstServiceStart(),
                now);
        }
        flight_sub(part.machine, queries[part.queryIdx].model,
                   "completion with nothing in flight");
        QueryState& q = queries[part.queryIdx];

        if (faultsOn || hedgeOn) {
            part.done = true;
            // A completion of a killed dispatch is a ghost: the query
            // already failed over (or was lost) and this part's share
            // was accounted at the kill.
            if (part.gen != q.gen || q.dead)
                return;
            if (part.partner != PartRec::kNoPartner) {
                const PartRec& twin = parts[part.partner];
                if (twin.done) {
                    // The twin got here first; this copy's answer is
                    // discarded (tied-request loser).
                    result.faults.hedgeWasted++;
                    return;
                }
                if (part.hedged)
                    result.faults.hedgeWins++;
            }
        }

        if (part.kind == PartRec::Kind::FanEmb &&
            cfg.join == JoinModel::TwoStage) {
            // Pooled embeddings travel to the leader; the dense phase
            // starts once the last part (the leader's own hop-free)
            // lands. A degraded NIC on either end stretches the hop.
            const double to_leader = part.leader
                ? 0.0
                : cfg.network.oneWaySeconds(
                      static_cast<double>(q.size) *
                      cfg.network.embeddingBytesPerSample) *
                      std::max(netFactor[part.machine],
                               netFactor[q.machine]);
            q.leaderReady = std::max(q.leaderReady, now + to_leader);
            drs_assert(q.partsLeft > 0, "query with no pending parts");
            if (--q.partsLeft > 0)
                return;
            q.partsLeft = 1;    // the dense phase itself
            const uint64_t query_idx = part.queryIdx;
            const uint64_t dense_idx = parts.size();
            PartRec dense;
            dense.queryIdx = query_idx;
            dense.machine = q.machine;
            dense.embFraction = 0.0;
            dense.leader = true;
            dense.kind = PartRec::Kind::FanDense;
            dense.gen = q.gen;
            parts.push_back(std::move(dense));
            flight_add(q.machine, q.model);
            result.perMachine[q.machine].joinPhases++;
            events.push(q.leaderReady, SimEvent::Kind::JoinPhase,
                        q.machine, dense_idx);
            return;
        }

        // Whole parts, optimistic fan-out parts, and dense phases all
        // return scores to the router and join there.
        const double back = cfg.network.oneWaySeconds(
            static_cast<double>(q.size) *
            cfg.network.responseBytesPerSample) *
            netFactor[part.machine];
        q.joinTime = std::max(q.joinTime, now + back);
        drs_assert(q.partsLeft > 0, "query with no pending parts");
        if (--q.partsLeft == 0)
            complete_query(part.queryIdx);
    };

    // A failure destroyed query @p idx's current dispatch. Release
    // its committed join cost, then either fail over (schedule a
    // re-present with exponential client backoff) or record the final
    // loss. Callers guarantee the query is live (not dead, current
    // generation).
    auto fail_query = [&](uint64_t idx, double now) {
        QueryState& q = queries[idx];
        q.dead = true;
        if (q.joinCommitted) {
            const double phase =
                machines[q.machine].joinPhaseCostSeconds(q.size, q.model);
            pendingJoinCost[q.machine] -= phase;
            if (mixOn)
                pendingJoinByModel[q.machine * numMix + q.model] -= phase;
            q.joinCommitted = false;
        }
        if (q.failovers < cfg.faults.maxFailovers) {
            q.failovers++;
            result.faults.failovers++;
            const double delay = cfg.faults.failoverDelaySeconds *
                static_cast<double>(
                    1u << std::min<uint32_t>(q.failovers - 1, 16));
            events.push(now + delay, SimEvent::Kind::Retry, 0, idx);
            if (obs_)
                obs_->onQueryFailover(idx, now, q.failovers, delay);
        } else {
            result.faults.lost++;
            result.faults.lostQueries.push_back(idx);
            if (mixOn)
                result.perModel[q.model].lost++;
            result.machineOfQuery[idx] = ClusterResult::lostMachine;
            if (idx >= warmup)
                span.onArrival(trace[idx].arrivalSeconds);
            if (obs_)
                obs_->onQueryLost(idx, now);
        }
    };

    // A live part was destroyed (its machine crashed, or its forwarded
    // RPC landed on a dead machine). Decide the owning query's fate.
    auto lost_part_fate = [&](uint64_t part_idx, double now) {
        PartRec& part = parts[part_idx];
        part.cancelled = true;
        flight_sub(part.machine, queries[part.queryIdx].model,
                   "lost part with nothing in flight");
        result.faults.partsLost++;
        QueryState& q = queries[part.queryIdx];
        if (part.gen != q.gen || q.dead)
            return;    // that dispatch already died
        if (part.partner != PartRec::kNoPartner) {
            const PartRec& twin = parts[part.partner];
            if (twin.done)
                return;    // the share already completed via the twin
            if (!twin.cancelled) {
                // The twin is still running and carries the share —
                // the hedge just saved this query from the crash.
                result.faults.hedgeSaves++;
                return;
            }
        }
        fail_query(part.queryIdx, now);
    };

    // Fail-stop crash of machine @p m: epoch-fence its pending engine
    // completions, destroy queued and in-flight work, mark it
    // non-accepting. Depth-counted so overlapping windows (random +
    // correlated) stay idempotent.
    auto on_crash = [&](uint32_t m, double now) {
        if (downDepth[m]++ > 0)
            return;
        down[m] = 1;
        upCount--;
        result.faults.crashes++;
        engineEpoch[m]++;
        lastFaultAdvance = std::max(lastFaultAdvance, now);
        lostBuf.clear();
        machines[m].crash(now, lostBuf);
        if (obs_)
            obs_->onMachineDown(m, now);
        for (uint64_t lost_part : lostBuf)
            lost_part_fate(lost_part, now);
    };

    auto on_recover = [&](uint32_t m, double now) {
        drs_assert(downDepth[m] > 0, "recovery of a machine never down");
        if (--downDepth[m] > 0)
            return;
        down[m] = 0;
        upCount++;
        result.faults.recoveries++;
        if (obs_)
            obs_->onMachineUp(m, now);
    };

    // Tail-at-scale hedging: the query is still missing fan-out parts
    // hedgeDelay after dispatch. Duplicate each unfinished, unhedged,
    // non-leader embedding part onto the least-loaded accepting
    // replica of its tables and let the copies race.
    auto hedge_query = [&](uint64_t idx, double now) {
        QueryState& q = queries[idx];
        const uint64_t first = q.firstPart;
        const uint32_t width = q.numParts;
        for (uint32_t i = 0; i < width; i++) {
            const uint64_t pi = first + i;
            if (parts[pi].done || parts[pi].cancelled ||
                parts[pi].leader ||
                parts[pi].partner != PartRec::kNoPartner ||
                parts[pi].kind != PartRec::Kind::FanEmb)
                continue;
            const uint32_t src = parts[pi].machine;
            const ShardPlacement& placement = cfg.sharding->placement;
            size_t best = machines.size();
            double best_load = 0.0;
            for (size_t m = 0; m < machines.size(); m++) {
                if (m == src || down[m])
                    continue;
                if (!placement.holdsAll(m, parts[pi].tables))
                    continue;
                // The router's load signal (outstanding work scaled
                // by machine speed), lowest index winning ties.
                const double load =
                    static_cast<double>(inFlight[m] +
                                        machines[m].queuedWork()) *
                    cfg.machines[m].slowdown;
                if (best == machines.size() || load < best_load) {
                    best = m;
                    best_load = load;
                }
            }
            if (best == machines.size())
                continue;    // no surviving replica to hedge onto
            const uint64_t dup_idx = parts.size();
            PartRec dup;
            dup.queryIdx = idx;
            dup.machine = static_cast<uint32_t>(best);
            dup.embFraction = parts[pi].embFraction;
            dup.leader = false;
            dup.kind = PartRec::Kind::FanEmb;
            dup.gen = q.gen;
            dup.partner = pi;
            dup.hedged = true;
            dup.tables = parts[pi].tables;
            parts.push_back(std::move(dup));
            parts[pi].partner = dup_idx;
            flight_add(static_cast<uint32_t>(best), q.model);
            result.perMachine[best].remoteParts++;
            result.numParts++;
            result.partMachinesOfQuery[idx].push_back(
                static_cast<uint32_t>(best));
            result.faults.hedged++;
            if (obs_)
                obs_->onPartHedged(idx, now, src,
                                   static_cast<uint32_t>(best));
            const double forward = cfg.network.oneWaySeconds(
                static_cast<double>(q.size) *
                cfg.network.requestBytesPerSample) * netFactor[best];
            if (forward > 0.0) {
                events.push(now + forward, SimEvent::Kind::PartArrival,
                            static_cast<uint32_t>(best), dup_idx);
            } else {
                machines[best].advanceTo(now);
                start_part(dup_idx, now);
            }
        }
    };

    // Present query @p idx to the router at @p now — its trace
    // arrival, or a client retry of an earlier shed. The router's
    // overload verdict either drops it (final, or with a retry
    // scheduled), degrades it (shrinks the size dispatched
    // downstream), or passes it through. Latency always counts from
    // the original trace arrival, so a retried completion pays its
    // backoff — retries buy availability, not goodput.
    auto present = [&](uint64_t idx, double now) {
        const Query& in = trace[idx];
        QueryState& q = queries[idx];
        drs_assert(in.model < numMix,
                   "query's model is outside the tier's mix");
        q.model = in.model;
        q.cls = cfg.overload.priorityClasses > 1
            ? std::min(in.priorityClass, cfg.overload.priorityClasses - 1)
            : 0;
        ClassOverloadStats* cs = class_stats(q.cls);
        if (cs && q.attempt == 0 && q.failovers == 0)
            cs->offered++;

        Query served = in;
        double quality = 1.0;
        if (admission) {
            const AdmissionDecision verdict = admission->decide(in, view);
            if (!verdict.admit) {
                // Shed at the router: nothing reaches a machine.
                // Measured drops still open the span so goodput is
                // charged against real offered time.
                lastEventTime = std::max(lastEventTime, now);
                if (idx >= warmup)
                    span.onArrival(in.arrivalSeconds);
                result.overload.dropped++;
                if (cs)
                    cs->dropped++;
                if (verdict.retryable &&
                    q.attempt < cfg.overload.maxRetries) {
                    const double delay = retryDelaySeconds(
                        cfg.overload.retryBackoffSeconds,
                        cfg.overload.retryBackoffFactor,
                        cfg.overload.retryJitterFraction,
                        verdict.retryAfterSeconds, in.id, q.attempt);
                    q.attempt++;
                    result.overload.retried++;
                    if (cs)
                        cs->retried++;
                    events.push(now + delay, SimEvent::Kind::Retry, 0,
                                idx);
                    if (obs_)
                        obs_->onQueryRetry(idx, now, q.attempt, delay);
                } else {
                    result.overload.droppedFinal++;
                    if (cs)
                        cs->droppedFinal++;
                    if (mixOn)
                        result.perModel[in.model].droppedFinal++;
                    result.machineOfQuery[idx] =
                        ClusterResult::droppedMachine;
                    result.overload.droppedQueries.push_back(idx);
                    if (obs_)
                        obs_->onQueryDrop(idx, now, in.size);
                }
                return;
            }
            if (verdict.servedSize < in.size)
                served.size = verdict.servedSize;
            quality = verdict.quality;
        }

        // Route before committing the admission books: under fault
        // injection the query may be unservable (no accepting replica
        // set covers its tables), which is neither an admission nor a
        // drop — admission never saw a servable query.
        std::vector<ShardTarget> plan;
        if (!faultsOn || upCount > 0)
            plan = policy.routeParts(served, view);
        if (plan.empty()) {
            drs_assert(faultsOn, "policy returned no targets");
            lastEventTime = std::max(lastEventTime, now);
            if (idx >= warmup)
                span.onArrival(in.arrivalSeconds);
            result.faults.unroutable++;
            fail_query(idx, now);
            return;
        }
        if (admission && served.size < in.size) {
            result.overload.degraded++;
            if (cs)
                cs->degraded++;
            result.overload.degradedQueries.push_back(
                {idx, in.size, served.size});
            if (obs_)
                obs_->onQueryDegrade(idx, now, in.size, served.size);
        }
        result.overload.admitted++;
        if (cs)
            cs->admitted++;
        lastEventTime = std::max(lastEventTime, now);

        q.arrival = in.arrivalSeconds;
        q.size = served.size;
        q.partsLeft = static_cast<uint32_t>(plan.size());
        q.joinTime = now;
        q.leaderReady = now;
        q.quality = quality;
        q.measured = idx >= warmup;
        q.gen++;
        q.dead = false;
        q.firstPart = parts.size();
        q.numParts = static_cast<uint32_t>(plan.size());
        q.joinCommitted = false;
        if (q.measured)
            span.onArrival(in.arrivalSeconds);

        result.numDispatched++;
        if (mixOn)
            result.perModel[q.model].dispatched++;
        const double forward = cfg.network.oneWaySeconds(
            static_cast<double>(served.size) *
            cfg.network.requestBytesPerSample);
        if (obs_)
            obs_->onQueryDispatch(idx, now, served.size, plan.size(),
                                  forward, q.measured);

        size_t leaders = 0;
        for (ShardTarget& target : plan) {
            drs_assert(target.machine < machines.size(),
                       "policy routed out of range");
            const uint32_t m = target.machine;
            drs_assert(!down[m], "policy routed to a down machine");
            machines[m].advanceTo(now);
            flight_add(m, q.model);
            if (target.leader) {
                leaders++;
                q.machine = m;
                q.leaderEpoch = engineEpoch[m];
                result.machineOfQuery[idx] = m;
                result.perMachine[m].queriesDispatched++;
            } else {
                result.perMachine[m].remoteParts++;
            }
            result.partMachinesOfQuery[idx].push_back(m);

            const uint64_t part_idx = parts.size();
            parts.push_back({idx, m, target.embFraction, 0.0,
                             target.leader,
                             plan.size() == 1
                                 ? PartRec::Kind::Whole
                                 : PartRec::Kind::FanEmb});
            parts.back().gen = q.gen;
            if (hedgeOn)
                parts.back().tables = std::move(target.tables);
            result.numParts++;
            if (forward > 0.0) {
                events.push(now + forward * netFactor[m],
                            SimEvent::Kind::PartArrival, m, part_idx);
            } else {
                start_part(part_idx, now);
            }
        }
        drs_assert(leaders == 1, "plan needs exactly one leader");
        // Commit the leader's future dense phase to the estimator's
        // second-order backlog (released exactly once, at the
        // JoinPhase event or when a failure kills the dispatch).
        if (trackJoinCost && plan.size() > 1) {
            const double phase = machines[q.machine].joinPhaseCostSeconds(
                served.size, q.model);
            pendingJoinCost[q.machine] += phase;
            if (mixOn)
                pendingJoinByModel[q.machine * numMix + q.model] += phase;
            q.joinCommitted = true;
        }
        // Arm the tail-at-scale hedge for fanned-out dispatches; the
        // check goes stale if the query completes or fails first.
        if (hedgeOn && plan.size() > 1)
            events.push(now + hedgeDelay, SimEvent::Kind::HedgeCheck, 0,
                        idx, q.gen);
    };

    size_t nextArrival = 0;
    while (nextArrival < trace.size() || !events.empty()) {
        const bool haveArrival = nextArrival < trace.size();
        const bool takeArrival = haveArrival &&
            (events.empty() ||
             trace[nextArrival].arrivalSeconds <= events.top().time);

        if (takeArrival) {
            const Query& in = trace[nextArrival];
            drs_assert(nextArrival == 0 ||
                           in.arrivalSeconds >=
                               trace[nextArrival - 1].arrivalSeconds,
                       "trace must be sorted by arrival");
            result.overload.offered++;
            if (mixOn) {
                drs_assert(in.model < numMix,
                           "query's model is outside the tier's mix");
                result.perModel[in.model].offered++;
            }
            present(nextArrival, in.arrivalSeconds);
            nextArrival++;
            continue;
        }

        const SimEvent ev = events.pop();

        // Fault transitions and hedge checks are environment, not
        // traffic: they are handled before the generic advance so they
        // never stretch the measured span or utilization window.
        if (ev.kind == SimEvent::Kind::Fault) {
            const FaultEvent& fe = faultSchedule[ev.partIdx];
            switch (fe.kind) {
              case FaultEvent::Kind::Crash:
                on_crash(fe.machine, ev.time);
                break;
              case FaultEvent::Kind::Recover:
                on_recover(fe.machine, ev.time);
                break;
              case FaultEvent::Kind::GrayStart:
                // Depth-counted: overlapping windows extend, the first
                // open sets the factor, the last close clears it.
                if (grayDepth[fe.machine]++ == 0) {
                    machines[fe.machine].setServiceFactor(fe.factor);
                    result.faults.grayWindows++;
                }
                break;
              case FaultEvent::Kind::GrayEnd:
                if (--grayDepth[fe.machine] == 0)
                    machines[fe.machine].setServiceFactor(1.0);
                break;
              case FaultEvent::Kind::NetDegradeStart:
                if (netDepth[fe.machine]++ == 0) {
                    netFactor[fe.machine] = fe.factor;
                    result.faults.netDegradeWindows++;
                }
                break;
              case FaultEvent::Kind::NetDegradeEnd:
                if (--netDepth[fe.machine] == 0)
                    netFactor[fe.machine] = 1.0;
                break;
            }
            continue;
        }
        if (ev.kind == SimEvent::Kind::HedgeCheck) {
            const QueryState& hq = queries[ev.partIdx];
            if (ev.slot == hq.gen && !hq.dead && hq.partsLeft > 0)
                hedge_query(ev.partIdx, ev.time);
            continue;
        }
        // A completion stamped by a dead engine incarnation is a
        // ghost: the crash already accounted for its part.
        if (faultsOn && ev.epoch != engineEpoch[ev.machine] &&
            (ev.kind == SimEvent::Kind::CpuRequest ||
             ev.kind == SimEvent::Kind::GpuQuery))
            continue;

        machines[ev.machine].advanceTo(ev.time);
        lastEventTime = std::max(lastEventTime, ev.time);

        switch (ev.kind) {
          case SimEvent::Kind::PartArrival:
            if (faultsOn) {
                PartRec& part = parts[ev.partIdx];
                const QueryState& q = queries[part.queryIdx];
                if (part.gen != q.gen || q.dead) {
                    // The dispatch died while this RPC was in flight;
                    // the client cancelled it.
                    part.cancelled = true;
                    flight_sub(ev.machine, q.model,
                               "cancel with nothing in flight");
                    break;
                }
                if (down[ev.machine]) {
                    // Forwarded onto a machine that died en route.
                    lost_part_fate(ev.partIdx, ev.time);
                    break;
                }
            }
            start_part(ev.partIdx, ev.time);
            break;

          case SimEvent::Kind::JoinPhase: {
            PartRec& part = parts[ev.partIdx];
            QueryState& q = queries[part.queryIdx];
            if (faultsOn && (part.gen != q.gen || q.dead)) {
                // Stale join of a killed dispatch — its committed
                // cost was already released at the kill.
                part.cancelled = true;
                flight_sub(ev.machine, q.model,
                           "cancel with nothing in flight");
                break;
            }
            // The committed phase becomes real queued work here; the
            // subtraction mirrors the addition at fan-out dispatch
            // exactly (identical joinPhaseCostSeconds inputs).
            if (q.joinCommitted) {
                const double phase = machines[ev.machine]
                    .joinPhaseCostSeconds(q.size, q.model);
                pendingJoinCost[ev.machine] -= phase;
                if (mixOn)
                    pendingJoinByModel[ev.machine * numMix + q.model] -=
                        phase;
                q.joinCommitted = false;
            }
            if (faultsOn && engineEpoch[q.machine] != q.leaderEpoch) {
                // The leader restarted since dispatch: the pooled
                // embeddings of this query died with it.
                part.cancelled = true;
                flight_sub(ev.machine, q.model,
                           "cancel with nothing in flight");
                fail_query(part.queryIdx, ev.time);
                break;
            }
            start_part(ev.partIdx, ev.time);
            break;
          }

          case SimEvent::Kind::CpuRequest:
            scheduled.clear();
            if (machines[ev.machine].cpuRequestDone(ev.slot, ev.partIdx,
                                                    ev.time, scheduled))
                finish_part(ev.partIdx, ev.time, false);
            events.pushAll(scheduled, ev.machine,
                           engineEpoch[ev.machine]);
            break;

          case SimEvent::Kind::GpuQuery:
            scheduled.clear();
            machines[ev.machine].gpuQueryDone(ev.slot, ev.partIdx,
                                              ev.time, scheduled);
            finish_part(ev.partIdx, ev.time, true);
            events.pushAll(scheduled, ev.machine,
                           engineEpoch[ev.machine]);
            break;

          case SimEvent::Kind::Retry:
            // A client re-presents a shed or failed-over query after
            // its backoff.
            present(ev.partIdx, ev.time);
            break;

          case SimEvent::Kind::Fault:
          case SimEvent::Kind::HedgeCheck:
            drs_panic("fault events are handled before the switch");

          case SimEvent::Kind::Control:
          case SimEvent::Kind::MachineUp:
            drs_panic("scale events belong to the elastic driver");
        }
    }

    result.numQueries = result.fleetLatencySeconds.count();
    result.meanFanout = result.numDispatched > 0
        ? static_cast<double>(result.numParts) /
              static_cast<double>(result.numDispatched)
        : 0.0;
    result.spanSeconds = span.seconds();
    result.offeredQps = traceOfferedQps(trace);
    result.achievedQps = span.achievedQps(result.numQueries);
    if (cfg.overload.deadlineSeconds > 0.0 && result.spanSeconds > 0.0) {
        result.overload.goodputQps =
            result.overload.qualityWeight / result.spanSeconds;
        for (ClassOverloadStats& cs : result.overload.perClass)
            cs.goodputQps = cs.qualityWeight / result.spanSeconds;
    }

    const double full_span = lastEventTime - trace.front().arrivalSeconds;
    // A crash may have advanced an engine past the last traffic event;
    // the final advance must never move a clock backwards. Busy time
    // cannot accrue on an idle machine, so the integrals are unchanged.
    const double finalAdvance = std::max(lastEventTime, lastFaultAdvance);
    double util_sum = 0.0;
    for (size_t m = 0; m < machines.size(); m++) {
        machines[m].advanceTo(finalAdvance);
        MachineStats& stats = result.perMachine[m];
        stats.requestsDispatched = machines[m].requestsDispatched();
        stats.busyCoreSeconds = machines[m].busyCoreSeconds();
        stats.gpuBusySeconds = machines[m].gpuBusySeconds();
        if (full_span > 0.0) {
            const double cores = static_cast<double>(
                cfg.machines[m].cpu.platform().cores);
            stats.cpuUtilization =
                stats.busyCoreSeconds / (full_span * cores);
            stats.gpuUtilization = stats.gpuBusySeconds / full_span;
        }
        util_sum += stats.cpuUtilization;
    }
    result.meanCpuUtilization =
        util_sum / static_cast<double>(machines.size());

    // The three-way conservation algebra holds exactly on every run —
    // chaos or not — at any thread count.
    assertFaultConservation(result.overload, result.faults,
                            result.numDispatched, result.numCompleted,
                            trace.size());
    if (mixOn) {
        // The same algebra per model, plus the cross-model sum checks:
        // every query is exactly one model's, so the per-model books
        // must tile the fleet totals with nothing left over.
        uint64_t sum_offered = 0;
        uint64_t sum_completed = 0;
        for (const ModelStats& ms : result.perModel) {
            drs_assert(ms.offered ==
                           ms.completed + ms.droppedFinal + ms.lost,
                       "per-model conservation violated");
            sum_offered += ms.offered;
            sum_completed += ms.completed;
        }
        drs_assert(sum_offered == result.overload.offered,
                   "per-model offered books do not tile the fleet total");
        drs_assert(sum_completed == result.numCompleted,
                   "per-model completion books do not tile the fleet "
                   "total");
    }
    return result;
}

ClusterResult
ClusterSimulator::run(const QueryTrace& trace, const RoutingSpec& spec) const
{
    const std::unique_ptr<RoutingPolicy> policy = makeRoutingPolicy(
        spec, cfg.sharding.has_value() ? &*cfg.sharding : nullptr);
    return run(trace, *policy);
}

} // namespace deeprecsys
