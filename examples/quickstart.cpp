/**
 * @file
 * Quickstart: build a recommendation model from the zoo, serve real
 * queries through the multi-threaded engine, and tune the per-request
 * batch size with DeepRecSched on the simulator.
 *
 * Run: ./quickstart [model-name]   (default DLRM-RMC1)
 */

#include <iostream>

#include "core/deeprecsched.hh"
#include "loadgen/query_stream.hh"
#include "serving/engine.hh"

using namespace deeprecsys;

int
main(int argc, char** argv)
{
    const ModelId id =
        argc > 1 ? modelFromName(argv[1]) : ModelId::DlrmRmc1;

    // --- 1. Materialize the model and run one real inference. ---
    const RecModel model(modelConfig(id), /*seed=*/42);
    Rng rng(7);
    const RecBatch batch = model.makeBatch(4, rng);
    const Tensor ctr = model.forward(batch);
    std::cout << "model " << modelName(id) << ": scored "
              << ctr.dim(0) << " user-item pairs, CTR[0]="
              << ctr.at(0, 0) << "\n";

    // --- 2. Serve a production-like query trace on real threads. ---
    LoadSpec load;
    load.qps = 50.0;
    QueryStream stream(load);
    const QueryTrace trace = stream.generate(64);

    EngineConfig engine_cfg;
    engine_cfg.numWorkers = 2;
    engine_cfg.perRequestBatch = 64;
    ServingEngine engine(model, engine_cfg);
    const EngineResult served = engine.serveAll(trace);
    std::cout << "served " << served.numQueries << " queries as "
              << served.numRequests << " requests: mean "
              << served.meanMs() << " ms, p95 " << served.p95Ms()
              << " ms\n";

    // --- 3. Tune the scheduler against the SLA on the simulator. ---
    InfraConfig infra_cfg;
    infra_cfg.model = id;
    infra_cfg.numQueries = 1500;
    DeepRecInfra infra(infra_cfg);
    const double sla = infra.slaMs(SlaTier::Medium);
    const TuningResult base = DeepRecSched::baseline(infra, sla);
    const TuningResult tuned = DeepRecSched::tuneCpu(infra, sla);
    std::cout << "SLA p95<=" << sla << " ms: static baseline (batch "
              << base.policy.perRequestBatch << ") sustains "
              << base.qps() << " QPS; DeepRecSched picks batch "
              << tuned.policy.perRequestBatch << " and sustains "
              << tuned.qps() << " QPS ("
              << tuned.qps() / base.qps() << "x)\n";
    return 0;
}
