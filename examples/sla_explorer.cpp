/**
 * @file
 * SLA explorer: how does the sustainable throughput of a model change
 * as the tail-latency target tightens, and how does the scheduler's
 * chosen operating point move? Mirrors the paper's Section VI-A
 * methodology for an arbitrary model/target grid.
 *
 * Run: ./sla_explorer [model-name]   (default DIEN)
 */

#include <iostream>

#include "base/table.hh"
#include "core/deeprecsched.hh"

using namespace deeprecsys;

int
main(int argc, char** argv)
{
    const ModelId id = argc > 1 ? modelFromName(argv[1]) : ModelId::Dien;

    InfraConfig cfg;
    cfg.model = id;
    cfg.numQueries = 1500;
    DeepRecInfra infra(cfg);

    const double medium = infra.slaMs(SlaTier::Medium);
    printBanner(std::cout, "SLA sweep for " + modelName(id) +
                               " (medium target " +
                               TextTable::num(medium, 0) + " ms)");

    TextTable table({"target (ms)", "tuned batch", "QPS", "p95 (ms)",
                     "p99 (ms)", "CPU util"});
    for (double frac : {0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0}) {
        const double sla = medium * frac;
        const TuningResult r = DeepRecSched::tuneCpu(infra, sla);
        if (r.qps() <= 0.0) {
            table.addRow({TextTable::num(sla, 1), "-", "infeasible",
                          "-", "-", "-"});
            continue;
        }
        table.addRow({TextTable::num(sla, 1),
                      std::to_string(r.policy.perRequestBatch),
                      TextTable::num(r.qps(), 0),
                      TextTable::num(r.atBest.atMax.p95Ms(), 1),
                      TextTable::num(r.atBest.atMax.p99Ms(), 1),
                      TextTable::num(
                          r.atBest.atMax.cpuUtilization * 100.0, 0) +
                          "%"});
    }
    table.print(std::cout);
    std::cout << "\nTighter targets force request-level parallelism"
                 " (smaller batches) and sacrifice throughput; relaxed"
                 " targets favour batch-level parallelism.\n";
    return 0;
}
