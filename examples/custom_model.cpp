/**
 * @file
 * Custom model: the generalized architecture of Figure 2 is a
 * configuration space, not a fixed zoo. This example defines a new
 * recommendation service (a hybrid with a dense stack, multi-hot
 * embeddings, and an attention path), checks its resource profile,
 * classifies its bottleneck, and tunes a scheduler for it.
 */

#include <iostream>

#include "base/table.hh"
#include "core/deeprecsched.hh"
#include "costmodel/model_profile.hh"
#include "models/rec_model.hh"

using namespace deeprecsys;

int
main()
{
    // A hypothetical "RM-X" ranking model: mid-sized dense stack,
    // 16 multi-hot tables, and a short attention window.
    ModelConfig cfg;
    cfg.id = ModelId::DlrmRmc1;     // id is informational here
    cfg.name = "RM-X";
    cfg.company = "example";
    cfg.domain = "Feed";
    cfg.denseInputDim = 128;
    cfg.denseFcDims = {256, 64};
    cfg.numTables = 16;
    cfg.tableRows = 2'000'000;
    cfg.embeddingDim = 64;
    cfg.lookupsPerTable = 24;
    cfg.pooling = Pooling::Sum;
    cfg.useAttention = true;
    cfg.behaviorTableRows = 10'000'000;
    cfg.seqLen = 48;
    cfg.attentionHidden = 32;
    cfg.predictFcDims = {256, 64};
    cfg.slaMediumMs = 60.0;

    // Real execution sanity check.
    const RecModel model(cfg, /*seed=*/5);
    Rng rng(9);
    const Tensor ctr = model.forward(model.makeBatch(8, rng));
    std::cout << "RM-X scores 8 pairs; CTR[0]=" << ctr.at(0, 0) << "\n";

    // Resource profile and measured bottleneck.
    const ModelProfile profile = ModelProfile::fromModel(model);
    Rng rng2(11);
    const OperatorStats breakdown = model.measureBreakdown(64, 2, rng2);
    printBanner(std::cout, "RM-X profile");
    std::cout << "  FC MFLOPs/sample:   "
              << profile.denseFlopsPerSample / 1e6 << "\n"
              << "  attn MFLOPs/sample: "
              << profile.attnFlopsPerSample / 1e6 << "\n"
              << "  emb KB/sample:      "
              << profile.embBytesPerSample / 1024.0 << "\n"
              << "  logical tables GB:  "
              << profile.logicalEmbeddingBytes / 1e9 << "\n"
              << "  measured dominant:  "
              << opClassName(breakdown.dominant()) << "\n";

    // Scheduler tuning for the new service.
    InfraConfig infra_cfg;
    infra_cfg.numQueries = 1200;
    DeepRecInfra base_infra(infra_cfg);   // platform defaults
    // Build an infra around the custom profile by hand.
    const CpuCostModel cost(profile, infra_cfg.platform);
    SchedulerPolicy policy;
    QpsSearchSpec spec;
    spec.slaMs = cfg.slaMediumMs;
    spec.numQueries = 1200;

    printBanner(std::cout, "RM-X batch-size climb (p95<=60ms)");
    TextTable table({"batch", "QPS"});
    double best_qps = 0.0;
    size_t best_batch = 1;
    for (size_t batch = 1; batch <= 1024; batch *= 2) {
        policy.perRequestBatch = batch;
        SimConfig sim{cost, std::nullopt, policy, 0.05, 1.0};
        const double qps = findMaxQps(sim, spec).maxQps;
        table.addRow({std::to_string(batch), TextTable::num(qps, 0)});
        if (qps > best_qps * 1.02) {
            best_qps = qps;
            best_batch = batch;
        }
    }
    table.print(std::cout);
    std::cout << "\nRM-X serves best at batch " << best_batch << " ("
              << best_qps << " QPS under its 60 ms target).\n";
    return 0;
}
