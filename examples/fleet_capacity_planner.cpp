/**
 * @file
 * Fleet capacity planner: size a datacenter tier for a target global
 * query rate under a p95 SLA, with heterogeneous machines and diurnal
 * traffic. Demonstrates the paper's motivating claim: doubling
 * per-machine latency-bounded throughput halves the number of
 * machines a service needs.
 *
 * Run: ./fleet_capacity_planner [model-name] [global-qps]
 *      (defaults: DLRM-RMC1, 100000)
 */

#include <cmath>
#include <iostream>
#include <string>

#include "base/table.hh"
#include "core/deeprecsched.hh"
#include "sim/fleet.hh"

using namespace deeprecsys;

namespace {

/** p95 of one fleet window at a per-machine rate and batch size. */
double
fleetP95Ms(ModelId model, size_t batch, double per_machine_qps)
{
    const ModelProfile profile = ModelProfile::forModel(model);
    SchedulerPolicy policy;
    policy.perRequestBatch = batch;
    SimConfig machine{CpuCostModel(profile, CpuPlatform::skylake()),
                      std::nullopt, policy, 0.05, 1.0};
    FleetConfig cfg;
    cfg.numMachines = 30;
    cfg.perMachineQps = per_machine_qps;
    cfg.queriesPerWindow = 900;
    cfg.numWindows = 4;
    cfg.diurnalPeakToTrough = 1.6;
    cfg.seed = 777;
    return FleetSimulator(machine, cfg).run().tailMs(95.0);
}

} // namespace

int
main(int argc, char** argv)
{
    const ModelId id =
        argc > 1 ? modelFromName(argv[1]) : ModelId::DlrmRmc1;
    const double global_qps = argc > 2 ? std::stod(argv[2]) : 100000.0;

    InfraConfig cfg;
    cfg.model = id;
    cfg.numQueries = 1500;
    DeepRecInfra infra(cfg);
    const double sla = infra.slaMs(SlaTier::Medium);

    printBanner(std::cout, "Capacity plan: " + modelName(id) + " at " +
                               TextTable::num(global_qps, 0) +
                               " global QPS, p95<=" +
                               TextTable::num(sla, 0) + " ms");

    const TuningResult base = DeepRecSched::baseline(infra, sla);
    const TuningResult tuned = DeepRecSched::tuneCpu(infra, sla);

    TextTable table({"scheduler", "batch", "per-machine QPS",
                     "machines needed", "fleet p95 at plan (ms)"});
    for (const auto& [name, r] :
         {std::pair<std::string, const TuningResult&>{"static baseline",
                                                      base},
          {"DeepRecSched", tuned}}) {
        // Headroom for the diurnal peak: plan at 80% of max.
        const double plan_qps = 0.8 * r.qps();
        const size_t machines = static_cast<size_t>(
            std::ceil(global_qps / plan_qps));
        const double p95 = fleetP95Ms(id, r.policy.perRequestBatch,
                                      plan_qps);
        table.addRow({name,
                      std::to_string(r.policy.perRequestBatch),
                      TextTable::num(r.qps(), 0),
                      std::to_string(machines),
                      TextTable::num(p95, 1)});
    }
    table.print(std::cout);

    const double saving =
        1.0 - (0.8 * base.qps()) / (0.8 * tuned.qps());
    std::cout << "\nDeepRecSched shrinks this tier by "
              << TextTable::num(saving * 100.0, 1)
              << "% of its machines - the datacenter capacity saving"
                 " the paper's introduction motivates.\n";
    return 0;
}
