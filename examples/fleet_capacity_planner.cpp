/**
 * @file
 * Fleet capacity planner: size a serving tier for a target global
 * query rate under a tail SLA by *simulating the cluster*, not by
 * dividing single-machine throughput into the global rate. The
 * per-machine scheduler comes from DeepRecSched tuning; the cluster
 * tier adds a router with power-of-two-choices balancing. Demonstrates
 * the paper's motivating claim: doubling per-machine latency-bounded
 * throughput halves the number of machines a service needs.
 *
 * Run: ./fleet_capacity_planner [model-name] [global-qps]
 *      (defaults: DLRM-RMC1, 50000)
 */

#include <iostream>
#include <string>

#include "base/table.hh"
#include "cluster/capacity_planner.hh"
#include "core/deeprecsched.hh"

using namespace deeprecsys;

int
main(int argc, char** argv)
{
    const ModelId id =
        argc > 1 ? modelFromName(argv[1]) : ModelId::DlrmRmc1;
    const double global_qps = argc > 2 ? std::stod(argv[2]) : 50000.0;

    InfraConfig cfg;
    cfg.model = id;
    cfg.numQueries = 1500;
    DeepRecInfra infra(cfg);
    const double sla = infra.slaMs(SlaTier::Medium);

    printBanner(std::cout, "Capacity plan: " + modelName(id) + " at " +
                               TextTable::num(global_qps, 0) +
                               " global QPS, p95<=" +
                               TextTable::num(sla, 0) + " ms");

    const TuningResult base = DeepRecSched::baseline(infra, sla);
    const TuningResult tuned = DeepRecSched::tuneCpu(infra, sla);

    TextTable table({"scheduler", "batch", "per-machine QPS",
                     "machines needed", "fleet p95 at plan (ms)"});
    size_t base_machines = 0;
    size_t tuned_machines = 0;
    for (const auto& [name, r] :
         {std::pair<std::string, const TuningResult&>{"static baseline",
                                                      base},
          {"DeepRecSched", tuned}}) {
        CapacityPlanSpec plan_spec;
        plan_spec.unitMachines = {infra.simConfig(r.policy)};
        plan_spec.targetQps = global_qps;
        plan_spec.slaMs = sla;
        plan_spec.percentile = 95.0;
        plan_spec.routing.kind = RoutingKind::PowerOfTwoChoices;
        const CapacityPlan plan = planCapacity(plan_spec);

        table.addRow({name,
                      std::to_string(r.policy.perRequestBatch),
                      TextTable::num(r.qps(), 0),
                      plan.feasible ? std::to_string(plan.machines)
                                    : "infeasible",
                      plan.feasible ? TextTable::num(plan.tailMs(95.0), 1)
                                    : "-"});
        if (name == "static baseline")
            base_machines = plan.machines;
        else
            tuned_machines = plan.machines;
    }
    table.print(std::cout);

    if (base_machines > 0 && tuned_machines > 0) {
        const double saving =
            1.0 - static_cast<double>(tuned_machines) /
                      static_cast<double>(base_machines);
        std::cout << "\nDeepRecSched shrinks this tier from "
                  << base_machines << " to " << tuned_machines
                  << " machines (" << TextTable::num(saving * 100.0, 1)
                  << "% fewer) - the datacenter capacity saving the"
                     " paper's introduction motivates, measured by"
                     " cluster simulation rather than division.\n";
    }
    return 0;
}
