/**
 * @file
 * GPU offload study: attach an accelerator to a serving machine and
 * let DeepRecSched decide which queries to offload. Shows the
 * two-stage tuning (batch size, then query-size threshold), the
 * resulting work split, and whether the extra board power pays off.
 *
 * Run: ./gpu_offload_study [model-name]   (default DLRM-RMC1)
 */

#include <iostream>

#include "base/table.hh"
#include "core/deeprecsched.hh"

using namespace deeprecsys;

int
main(int argc, char** argv)
{
    const ModelId id =
        argc > 1 ? modelFromName(argv[1]) : ModelId::DlrmRmc1;

    InfraConfig cpu_cfg;
    cpu_cfg.model = id;
    cpu_cfg.numQueries = 1500;
    DeepRecInfra cpu_infra(cpu_cfg);

    InfraConfig gpu_cfg = cpu_cfg;
    gpu_cfg.attachGpu = true;
    DeepRecInfra gpu_infra(gpu_cfg);

    const double sla = cpu_infra.slaMs(SlaTier::Medium);
    printBanner(std::cout, "GPU offload study: " + modelName(id) +
                               " at p95<=" + TextTable::num(sla, 0) +
                               " ms");

    const TuningResult cpu = DeepRecSched::tuneCpu(cpu_infra, sla);
    const TuningResult gpu = DeepRecSched::tuneGpu(gpu_infra, sla);

    std::cout << "stage 1 (batch climb):\n";
    for (const TuningPoint& p : gpu.batchCurve) {
        std::cout << "  batch " << static_cast<size_t>(p.knob) << " -> "
                  << p.qps << " QPS\n";
    }
    std::cout << "stage 2 (threshold climb):\n";
    for (const TuningPoint& p : gpu.thresholdCurve) {
        std::cout << "  threshold " << static_cast<size_t>(p.knob)
                  << " -> " << p.qps << " QPS\n";
    }

    TextTable table({"config", "QPS", "p95 (ms)", "GPU work", "GPU util",
                     "QPS/Watt"});
    table.addRow({"CPU only (batch " +
                      std::to_string(cpu.policy.perRequestBatch) + ")",
                  TextTable::num(cpu.qps(), 0),
                  TextTable::num(cpu.atBest.atMax.p95Ms(), 1), "0%", "-",
                  TextTable::num(cpu_infra.qpsPerWatt(cpu.atBest), 2)});
    table.addRow({"CPU+GPU (threshold " +
                      std::to_string(gpu.policy.gpuQueryThreshold) + ")",
                  TextTable::num(gpu.qps(), 0),
                  TextTable::num(gpu.atBest.atMax.p95Ms(), 1),
                  TextTable::num(
                      gpu.atBest.atMax.gpuWorkFraction * 100.0, 1) + "%",
                  TextTable::num(
                      gpu.atBest.atMax.gpuUtilization * 100.0, 1) + "%",
                  TextTable::num(gpu_infra.qpsPerWatt(gpu.atBest), 2)});
    table.print(std::cout);

    const double gain = gpu.qps() / cpu.qps();
    const double power_gain = gpu_infra.qpsPerWatt(gpu.atBest) /
                              cpu_infra.qpsPerWatt(cpu.atBest);
    std::cout << "\nThe accelerator buys " << TextTable::num(gain, 2)
              << "x throughput at " << TextTable::num(power_gain, 2)
              << "x power efficiency - "
              << (power_gain >= 1.0
                      ? "worth it for this model/SLA."
                      : "raw QPS improves but each watt does less; "
                        "offloading is a capacity tool here, not an "
                        "efficiency tool.")
              << "\n";
    return 0;
}
