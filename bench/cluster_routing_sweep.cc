/**
 * @file
 * Cluster routing-policy sweep: fleet tail latency of each routing
 * policy at equal offered load on a heterogeneous cluster.
 *
 * The cluster mixes nominal and 1.4x-slower machines (silicon and
 * co-runner variation, Section III-D) plus accelerator-equipped
 * machines, serving the production heavy-tailed query-size mix of
 * Figure 5. Queue-aware policies (join-shortest-queue,
 * power-of-two-choices) shed the load imbalance that uniform-random
 * and round-robin routing leave on slow machines, which shows up
 * directly in fleet p99 — the cluster-tier analogue of the paper's
 * tail-latency argument.
 */

#include <fstream>

#include "bench/bench_common.hh"
#include "cluster/cluster_sim.hh"
#include "loadgen/query_stream.hh"

using namespace deeprecsys;

namespace {

/** 12 CPU machines (alternating speed) + 4 GPU machines. */
ClusterConfig
mixedCluster()
{
    const ModelProfile profile = ModelProfile::forModel(ModelId::DlrmRmc1);
    const CpuCostModel cpu(profile, CpuPlatform::skylake());

    ClusterConfig cfg;
    for (size_t m = 0; m < 12; m++) {
        SchedulerPolicy policy;
        policy.perRequestBatch = 256;
        cfg.machines.push_back(
            SimConfig{cpu, std::nullopt, policy, 0.05,
                      m % 3 == 2 ? 1.4 : 1.0});
    }
    for (size_t m = 0; m < 4; m++) {
        SchedulerPolicy policy;
        policy.perRequestBatch = 256;
        policy.gpuEnabled = true;
        policy.gpuQueryThreshold = 400;
        cfg.machines.push_back(
            SimConfig{cpu, GpuCostModel(profile, GpuPlatform::gtx1080Ti()),
                      policy, 0.05, 1.0});
    }
    return cfg;
}

} // namespace

int
main(int argc, char** argv)
{
    printBanner(std::cout,
                "Cluster routing sweep: fleet tail vs policy at equal"
                " offered load");

    const ClusterConfig cluster = mixedCluster();
    const ClusterSimulator sim(cluster);
    const size_t queries = 24000;

    TextTable table({"offered QPS", "policy", "p50 (ms)", "p95 (ms)",
                     "p99 (ms)", "mean util", "p99 vs random"});

    for (double qps : {16000.0, 22000.0, 26000.0}) {
        LoadSpec load;
        load.qps = qps;
        QueryStream stream(load);
        const QueryTrace trace = stream.generate(queries);

        // Evaluate every policy first — concurrently on the shared
        // pool, consumed in input order — so each row can be compared
        // against the uniform-random baseline.
        const std::vector<ClusterResult> results =
            bench::sweepMap(allRoutingKinds(), [&](RoutingKind kind) {
                RoutingSpec spec;
                spec.kind = kind;
                spec.seed = 0xfeedULL;
                spec.sizeThreshold = 400;
                return sim.run(trace, spec);
            });
        double random_p99 = 0.0;
        for (size_t i = 0; i < results.size(); i++) {
            if (allRoutingKinds()[i] == RoutingKind::UniformRandom)
                random_p99 = results[i].p99Ms();
        }
        for (size_t i = 0; i < results.size(); i++) {
            const RoutingKind kind = allRoutingKinds()[i];
            const ClusterResult& r = results[i];
            const std::string vs_random =
                kind == RoutingKind::UniformRandom || random_p99 <= 0.0
                    ? "-"
                    : TextTable::num(r.p99Ms() / random_p99, 2) + "x";
            table.addRow({TextTable::num(qps, 0),
                          routingKindName(kind),
                          TextTable::num(r.tailMs(50), 2),
                          TextTable::num(r.p95Ms(), 2),
                          TextTable::num(r.p99Ms(), 2),
                          TextTable::num(r.meanCpuUtilization, 2),
                          vs_random});
        }
    }
    table.print(std::cout);
    std::cout << "\nJoin-shortest-queue and power-of-two-choices hold a"
                 " measurably lower fleet p99 than uniform-random at"
                 " equal offered load; size-aware routing additionally"
                 " keeps the heavy tail of Figure 5 on accelerator"
                 " machines.\n";

    if (argc > 1) {
        std::ofstream json(argv[1]);
        table.printJson(json);
        std::cout << "wrote " << argv[1] << "\n";
    }
    return 0;
}
