/**
 * @file
 * Shared helpers for the figure/table reproduction binaries.
 *
 * Every binary prints the series of one paper table or figure through
 * TextTable so outputs stay uniform and parseable. Seeds are fixed:
 * each binary's output is identical run-to-run.
 */

#ifndef DRS_BENCH_COMMON_HH
#define DRS_BENCH_COMMON_HH

#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "base/table.hh"
#include "base/thread_pool.hh"
#include "core/deeprecsched.hh"
#include "obs/observer.hh"

namespace deeprecsys::bench {

/** Queries per simulator evaluation used by the reproductions. */
constexpr size_t benchQueries = 1500;

/** The three SLA tiers evaluated by the paper. */
inline const std::vector<SlaTier>&
allTiers()
{
    static const std::vector<SlaTier> tiers = {
        SlaTier::Low, SlaTier::Medium, SlaTier::High};
    return tiers;
}

/** Standard experiment context for one model on Skylake. */
inline InfraConfig
defaultInfra(ModelId model, bool gpu = false)
{
    InfraConfig cfg;
    cfg.model = model;
    cfg.attachGpu = gpu;
    cfg.numQueries = benchQueries;
    return cfg;
}

/** Geometric mean of a series (requires positive entries). */
inline double
geomean(const std::vector<double>& values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

/**
 * Print a latency-attribution StageSplit (obs/observer.hh) as the
 * paper's Figure-6-style decomposition: mean per-query milliseconds
 * and share of total latency per stage. The four stages partition the
 * total by construction, so the shares sum to 100%.
 */
inline void
printStageSplit(std::ostream& os, const obs::StageSplit& split)
{
    os << "latency attribution ("
       << TextTable::num(static_cast<int64_t>(split.queries))
       << " measured queries):\n";
    TextTable table({"stage", "mean ms/query", "share %"});
    const std::pair<const char*, double> stages[] = {
        {"queue", split.queueSeconds},
        {"service", split.serviceSeconds},
        {"network", split.networkSeconds},
        {"join wait", split.joinWaitSeconds},
        {"total", split.totalSeconds},
    };
    for (const auto& [name, seconds] : stages)
        table.addRow({name, TextTable::num(split.meanMs(seconds), 3),
                      TextTable::num(100.0 * split.fraction(seconds), 1)});
    table.print(os);
}

/**
 * Evaluate one sweep point per grid item on the shared thread pool
 * (DRS_THREADS) and return the results **in input order** — never in
 * completion order, so a bench's printed table and JSON are identical
 * at every thread count (the golden/bench-JSON CI checks diff them).
 * Each fn(item) must be independent and deterministic; with
 * DRS_THREADS=1 this is exactly the historical serial loop.
 */
template <typename Item, typename Fn>
auto
sweepMap(const std::vector<Item>& items, Fn fn)
{
    return ThreadPool::shared().parallelMap(
        items.size(), [&](size_t i) { return fn(items[i]); });
}

} // namespace deeprecsys::bench

#endif // DRS_BENCH_COMMON_HH
