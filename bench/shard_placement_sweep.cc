/**
 * @file
 * Embedding-shard placement sweep: memory per machine vs fleet tail
 * latency — the capacity-driven scale-out question (Lui et al.).
 *
 * DLRM-RMC2's 32 embedding tables (8.2 GB logical) are placed across
 * an 8-machine tier under a per-machine memory budget, swept from
 * "barely fits sharded" to "most of the model fits everywhere". Each
 * placement strategy is evaluated with shard-aware routing: queries
 * whose working set sits on one machine stay single-hop, the rest fan
 * out over a set cover of the replicas and join, paying a per-hop
 * network latency + serialization term per part. Fan-out is priced
 * under both join models: the historical optimistic join (leader
 * dense stacks concurrent with remote lookups) and the faithful
 * two-stage join (the leader's predict stack waits for the pooled
 * remote embeddings, then runs as a second service phase) — the
 * difference between the two columns is the fan-out tax the
 * optimistic model under-reported. The sweep runs at
 * two operating points because the tradeoff changes sign with load:
 * lightly loaded, fan-out is free model parallelism (gathers split
 * across machines); under load, joining on the slowest of many parts
 * plus the per-part dispatch overheads saturates the single-copy
 * strategies first, and only replication can spend memory headroom
 * to buy the tail back. A strategy that cannot fit the tables at a
 * budget reports "infeasible" — hot/cold replication buys nothing
 * when there is no headroom to replicate into.
 *
 * Usage: shard_placement_sweep [out.json]  (also writes the table as
 * a JSON array when a path is given; CI archives it as an artifact).
 */

#include <fstream>

#include "bench/bench_common.hh"
#include "cluster/cluster_sim.hh"
#include "loadgen/query_stream.hh"

using namespace deeprecsys;

namespace {

constexpr double kGB = 1e9;

/** 8 identical Skylake machines with the given memory budget. */
ClusterConfig
tierWithBudget(double budget_gb)
{
    const ModelProfile profile = ModelProfile::forModel(ModelId::DlrmRmc2);
    const CpuCostModel cpu(profile, CpuPlatform::skylake());

    ClusterConfig cfg;
    for (size_t m = 0; m < 8; m++) {
        SchedulerPolicy policy;
        policy.perRequestBatch = 256;
        SimConfig machine{cpu, std::nullopt, policy, 0.05, 1.0};
        machine.memoryBytes = static_cast<uint64_t>(budget_gb * kGB);
        cfg.machines.push_back(machine);
    }
    // Router hop: 150 us one-way plus serialization at 12.5 GB/s.
    cfg.network.hopSeconds = 150e-6;
    cfg.network.gigabytesPerSecond = 12.5;
    return cfg;
}

} // namespace

int
main(int argc, char** argv)
{
    printBanner(std::cout,
                "Shard placement sweep: memory per machine vs fleet"
                " p99 (DLRM-RMC2, 8 machines, shard-aware routing)");

    const ModelConfig model = modelConfig(ModelId::DlrmRmc2);
    const std::vector<EmbeddingTableInfo> tables = embeddingTables(model);
    uint64_t total_bytes = 0;
    for (const EmbeddingTableInfo& t : tables)
        total_bytes += t.bytes;
    std::cout << "model: " << model.name << ", "
              << tables.size() << " tables, "
              << TextTable::num(static_cast<double>(total_bytes) / kGB, 2)
              << " GB logical embedding storage\n";

    TableSetSpec table_set;
    table_set.numTables = static_cast<uint32_t>(tables.size());
    table_set.tablesPerQuery = 8;

    TextTable table({"offered QPS", "GB/machine", "strategy", "replicas",
                     "mean fanout", "p50 (ms)", "p95 (ms)",
                     "p99 opt (ms)", "p99 2stage (ms)", "join tax",
                     "mean util"});

    for (double qps : {2200.0, 3000.0}) {
    LoadSpec load;
    load.qps = qps;
    QueryStream stream(load);
    const QueryTrace trace = stream.generate(16000);

    // The (budget x strategy) grid: every cell is two independent
    // cluster simulations, evaluated concurrently on the shared pool;
    // rows print in input order regardless of completion order.
    std::vector<std::pair<double, PlacementStrategy>> grid;
    for (double budget_gb : {1.25, 1.5, 2.0, 3.0, 4.0, 6.0, 9.0}) {
        for (PlacementStrategy strategy : allPlacementStrategies())
            grid.push_back({budget_gb, strategy});
    }
    const auto rows = bench::sweepMap(
        grid,
        [&](const std::pair<double, PlacementStrategy>& cell) {
            const auto& [budget_gb, strategy] = cell;
            ClusterConfig cluster = tierWithBudget(budget_gb);
            PlacementSpec placement_spec;
            placement_spec.strategy = strategy;
            const ShardPlacement placement = ShardPlacement::build(
                tables, machineMemoryBudgets(cluster.machines),
                placement_spec);
            if (!placement.feasible()) {
                return std::vector<std::string>{
                    TextTable::num(qps, 0),
                    TextTable::num(budget_gb, 2),
                    placementStrategyName(strategy),
                    "-", "-", "-", "-", "-", "infeasible", "-", "-"};
            }
            cluster.sharding = ShardingConfig{placement, table_set};

            RoutingSpec routing;
            routing.kind = RoutingKind::ShardAware;
            cluster.join = JoinModel::Optimistic;
            const ClusterResult opt =
                ClusterSimulator(cluster).run(trace, routing);
            cluster.join = JoinModel::TwoStage;
            const ClusterResult r =
                ClusterSimulator(cluster).run(trace, routing);

            return std::vector<std::string>{
                TextTable::num(qps, 0),
                TextTable::num(budget_gb, 2),
                placementStrategyName(strategy),
                TextTable::num(static_cast<int64_t>(
                    placement.totalReplicas())),
                TextTable::num(r.meanFanout, 2),
                TextTable::num(r.tailMs(50), 2),
                TextTable::num(r.p95Ms(), 2),
                TextTable::num(opt.p99Ms(), 2),
                TextTable::num(r.p99Ms(), 2),
                TextTable::num(r.p99Ms() / opt.p99Ms(), 2),
                TextTable::num(r.meanCpuUtilization, 2)};
        });
    for (const std::vector<std::string>& row : rows)
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\nAt light load, sharding acts as free model"
                 " parallelism: the embedding gathers split across"
                 " machines and the single-copy strategies post the"
                 " best p50. Under load the sign flips: every"
                 " fanned-out query joins on its slowest part and"
                 " pays per-part dispatch overheads, so single-copy"
                 " placement saturates first and its tail explodes,"
                 " while hot/cold replication converts memory"
                 " headroom into single-hop routing for the popular"
                 " tables and holds the fleet p99 — memory per"
                 " machine buys tail latency, the capacity-driven"
                 " scale-out tradeoff. The join-tax column is the p99"
                 " ratio of the two-stage join (leader waits on"
                 " pooled remote embeddings before its predict"
                 " stack) over the optimistic join that let them"
                 " overlap: the fan-out tax the optimistic model"
                 " under-reported, which replication also avoids.\n";

    if (argc > 1) {
        std::ofstream json(argv[1]);
        table.printJson(json);
        std::cout << "wrote " << argv[1] << "\n";
    }
    return 0;
}
