/**
 * @file
 * Reproduces Figure 6: execution-time split between small (<= p75
 * size) and large (> p75) queries on CPU and GPU. Despite being only
 * 25% of queries, large queries carry ~half of CPU execution time;
 * the GPU accelerates exactly that half.
 */

#include <algorithm>

#include "bench/bench_common.hh"
#include "costmodel/cpu_cost.hh"
#include "costmodel/gpu_cost.hh"
#include "loadgen/distributions.hh"

using namespace deeprecsys;

int
main()
{
    constexpr size_t n = 20000;
    auto dist = QuerySizeDistribution::production(/*seed=*/99);
    std::vector<uint32_t> sizes(n);
    for (auto& s : sizes)
        s = dist.sample();
    std::vector<uint32_t> sorted = sizes;
    std::sort(sorted.begin(), sorted.end());
    const uint32_t p75 = sorted[(3 * n) / 4];

    printBanner(std::cout,
                "Figure 6: execution time of small (<=p75) vs large "
                "(>p75) queries, p75=" + std::to_string(p75));
    TextTable table({"Model", "CPU small", "CPU large", "GPU small",
                     "GPU large", "large-share CPU",
                     "GPU speedup on large"});

    for (ModelId id : allModelIds()) {
        const ModelProfile p = ModelProfile::forModel(id);
        const CpuCostModel cpu(p, CpuPlatform::skylake());
        const GpuCostModel gpu(p, GpuPlatform::gtx1080Ti());

        double cpu_small = 0.0;
        double cpu_large = 0.0;
        double gpu_small = 0.0;
        double gpu_large = 0.0;
        for (uint32_t s : sizes) {
            const double tc = cpu.requestSeconds(s, 1);
            const double tg = gpu.querySeconds(s);
            if (s <= p75) {
                cpu_small += tc;
                gpu_small += tg;
            } else {
                cpu_large += tc;
                gpu_large += tg;
            }
        }
        table.addRow({p.name,
                      TextTable::num(cpu_small, 1) + "s",
                      TextTable::num(cpu_large, 1) + "s",
                      TextTable::num(gpu_small, 1) + "s",
                      TextTable::num(gpu_large, 1) + "s",
                      TextTable::num(cpu_large /
                                     (cpu_small + cpu_large) * 100.0, 1)
                          + "%",
                      TextTable::num(cpu_large / gpu_large, 2) + "x"});
    }
    table.print(std::cout);
    return 0;
}
