/**
 * @file
 * google-benchmark microbenchmarks for the NN substrate kernels that
 * the serving stack executes: FC/GEMM, embedding-bag gathers,
 * attention scoring, GRU steps, and whole-model forward passes. These
 * are the measurements that back the cost-model calibration.
 */

#include <benchmark/benchmark.h>

#include "models/rec_model.hh"
#include "nn/attention.hh"
#include "nn/embedding.hh"
#include "nn/gru.hh"
#include "nn/mlp.hh"

using namespace deeprecsys;

namespace {

void
BM_FcLayer(benchmark::State& state)
{
    const size_t batch = state.range(0);
    const size_t width = state.range(1);
    Rng rng(1);
    FcLayer layer(width, width, Activation::Relu, rng);
    Tensor x = Tensor::mat(batch, width);
    for (size_t i = 0; i < x.numel(); i++)
        x.at(i) = static_cast<float>(rng.uniform(-1.0, 1.0));
    Tensor out;
    for (auto _ : state) {
        layer.forward(x, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.counters["GFLOP/s"] = benchmark::Counter(
        static_cast<double>(layer.flopsPerSample()) * batch *
            state.iterations() / 1e9,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FcLayer)
    ->Args({1, 256})
    ->Args({16, 256})
    ->Args({64, 256})
    ->Args({256, 256})
    ->Args({64, 1024});

void
BM_EmbeddingBagSum(benchmark::State& state)
{
    const size_t batch = state.range(0);
    const size_t lookups = state.range(1);
    Rng rng(2);
    EmbeddingTable table(1ull << 20, 32, rng, 1ull << 17);
    const SparseBatch sparse =
        SparseBatch::uniform(batch, lookups, table.logicalRows(), rng);
    for (auto _ : state) {
        Tensor out = table.bagForward(sparse, Pooling::Sum);
        benchmark::DoNotOptimize(out.data());
    }
    state.counters["GB/s"] = benchmark::Counter(
        static_cast<double>(batch) * lookups * 32 * sizeof(float) *
            state.iterations() / 1e9,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EmbeddingBagSum)
    ->Args({1, 80})
    ->Args({16, 80})
    ->Args({64, 80})
    ->Args({256, 80})
    ->Args({64, 20});

void
BM_AttentionPool(benchmark::State& state)
{
    const size_t batch = state.range(0);
    const size_t seq = state.range(1);
    Rng rng(3);
    LocalActivationUnit att(64, 36, rng);
    Tensor behaviors({batch, seq, 64});
    Tensor candidates = Tensor::mat(batch, 64);
    for (size_t i = 0; i < behaviors.numel(); i++)
        behaviors.at(i) = static_cast<float>(rng.uniform(-0.1, 0.1));
    for (auto _ : state) {
        Tensor out = att.pool(behaviors, candidates);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_AttentionPool)->Args({8, 128})->Args({32, 128})->Args({8, 32});

void
BM_GruForward(benchmark::State& state)
{
    const size_t batch = state.range(0);
    const size_t seq = state.range(1);
    Rng rng(4);
    GruLayer gru(64, 64, rng);
    Tensor input({batch, seq, 64});
    for (size_t i = 0; i < input.numel(); i++)
        input.at(i) = static_cast<float>(rng.uniform(-0.1, 0.1));
    for (auto _ : state) {
        Tensor out = gru.forward(input);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_GruForward)->Args({8, 32})->Args({32, 32});

void
BM_ModelForward(benchmark::State& state)
{
    const ModelId id = static_cast<ModelId>(state.range(0));
    const size_t batch = state.range(1);
    ModelScale scale;
    scale.maxPhysicalRows = 1ull << 14;
    const RecModel model(modelConfig(id), 5, scale);
    Rng rng(6);
    const RecBatch input = model.makeBatch(batch, rng);
    for (auto _ : state) {
        Tensor out = model.forward(input);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetLabel(modelName(id));
    state.counters["us/sample"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * batch,
        benchmark::Counter::kIsRate |
            benchmark::Counter::kInvert);
}
BENCHMARK(BM_ModelForward)
    ->Args({static_cast<int>(ModelId::Ncf), 64})
    ->Args({static_cast<int>(ModelId::WideAndDeep), 64})
    ->Args({static_cast<int>(ModelId::DlrmRmc1), 64})
    ->Args({static_cast<int>(ModelId::DlrmRmc3), 64})
    ->Args({static_cast<int>(ModelId::Din), 16})
    ->Args({static_cast<int>(ModelId::Dien), 16});

} // namespace

BENCHMARK_MAIN();
