/**
 * @file
 * Reproduces Figure 1: (a) roofline placement of the recommendation
 * models — arithmetic intensity vs attainable performance on Skylake —
 * against CNN/RNN reference points, and (b) the memory-access
 * breakdown between dense (MLP weights/activations) and sparse
 * (embedding gather) traffic that drives the paper's model-level
 * heterogeneity argument.
 */

#include "bench/bench_common.hh"
#include "costmodel/cpu_cost.hh"
#include "costmodel/model_profile.hh"

using namespace deeprecsys;

int
main()
{
    const CpuPlatform skl = CpuPlatform::skylake();
    const double peak = skl.peakCoreFlops();
    const double bw = 6.0e9;    // single-core gather/stream bandwidth
    constexpr double batch = 64.0;

    printBanner(std::cout,
                "Figure 1(a): roofline placement at batch 64 (Skylake core)");
    TextTable roofline({"Workload", "FLOPs/sample", "Bytes/sample",
                        "Intensity (F/B)", "Attainable GFLOP/s",
                        "Bound"});

    auto add_point = [&](const std::string& name, double flops,
                         double bytes) {
        const double intensity = flops / bytes;
        const double attainable = std::min(peak, intensity * bw);
        roofline.addRow({name, TextTable::num(flops / 1e6, 2) + "M",
                         TextTable::num(bytes / 1024.0, 1) + "K",
                         TextTable::num(intensity, 2),
                         TextTable::num(attainable / 1e9, 1),
                         intensity * bw < peak ? "memory" : "compute"});
    };

    for (ModelId id : allModelIds()) {
        const ModelProfile p = ModelProfile::forModel(id);
        const double flops = p.flops(1.0);
        const double bytes =
            p.embBytesPerSample + p.denseParamBytes / batch +
            p.inputBytesPerSample;
        add_point(p.name, flops, bytes);
    }
    // Reference points: ResNet-50 (~4 GFLOPs, ~100 MB weights but high
    // reuse => intensity ~35) and DeepSpeech2-style RNN (low reuse).
    add_point("ResNet50(ref)", 4.0e9, 4.0e9 / 35.0);
    add_point("DeepSpeech2(ref)", 1.0e9, 1.0e9 / 4.0);
    roofline.print(std::cout);

    printBanner(std::cout,
                "Figure 1(b): memory access breakdown (dense vs sparse)");
    TextTable mem({"Model", "Dense bytes/sample", "Sparse bytes/sample",
                   "Sparse fraction", "Regime"});
    for (ModelId id : allModelIds()) {
        const ModelProfile p = ModelProfile::forModel(id);
        const double dense = p.denseParamBytes / batch +
                             p.inputBytesPerSample;
        const double sparse = p.embBytesPerSample;
        const double frac = sparse / (sparse + dense);
        mem.addRow({p.name, TextTable::num(dense, 0),
                    TextTable::num(sparse, 0), TextTable::num(frac, 2),
                    frac > 0.5 ? "sparse-dominated"
                               : "dense-dominated"});
    }
    mem.print(std::cout);
    return 0;
}
