/**
 * @file
 * Reproduces Figure 7: the latency distribution measured on a small
 * subsample of machines tracks the full datacenter fleet to within
 * ~10%, justifying single-node studies of tail behaviour.
 */

#include "bench/bench_common.hh"
#include "cluster/fleet.hh"

using namespace deeprecsys;

namespace {

SimConfig
machineConfig(ModelId model, const CpuPlatform& platform)
{
    const ModelProfile profile = ModelProfile::forModel(model);
    SchedulerPolicy policy;
    policy.perRequestBatch = 256;
    return SimConfig{CpuCostModel(profile, platform), std::nullopt,
                     policy, 0.05, 1.0};
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Figure 7: datacenter fleet vs machine subsample");
    TextTable table({"Model", "Platform", "fleet p50 (ms)",
                     "sub p50 (ms)", "fleet p95", "sub p95",
                     "fleet p99", "sub p99", "max tail deviation"});

    struct Case
    {
        ModelId model;
        CpuPlatform platform;
        double qps;
    };
    const std::vector<Case> cases = {
        {ModelId::DlrmRmc1, CpuPlatform::skylake(), 1200.0},
        {ModelId::DlrmRmc3, CpuPlatform::broadwell(), 200.0},
    };

    for (const Case& c : cases) {
        FleetConfig fleet_cfg;
        fleet_cfg.numMachines = 120;
        fleet_cfg.perMachineQps = c.qps;
        fleet_cfg.queriesPerWindow = 2000;
        fleet_cfg.speedSigma = 0.04;
        fleet_cfg.interferenceProb = 0.08;
        fleet_cfg.interferenceSlowdown = 1.10;
        fleet_cfg.seed = 4321;

        FleetSimulator fleet(machineConfig(c.model, c.platform),
                             fleet_cfg);
        const FleetResult r = fleet.run();
        const SampleStats sub =
            r.subsample({3, 17, 29, 42, 61, 77, 88, 104});

        // Deviation over the CDF range Figure 7 plots (up to p95).
        double max_dev = 0.0;
        for (double pct : {50.0, 75.0, 90.0, 95.0}) {
            const double f = r.fleetLatency.percentile(pct);
            const double s = sub.percentile(pct);
            max_dev = std::max(max_dev, std::abs(s - f) / f);
        }
        table.addRow({modelName(c.model), c.platform.name,
                      TextTable::num(r.fleetLatency.percentile(50) * 1e3, 2),
                      TextTable::num(sub.percentile(50) * 1e3, 2),
                      TextTable::num(r.fleetLatency.percentile(95) * 1e3, 2),
                      TextTable::num(sub.percentile(95) * 1e3, 2),
                      TextTable::num(r.fleetLatency.percentile(99) * 1e3, 2),
                      TextTable::num(sub.percentile(99) * 1e3, 2),
                      TextTable::num(max_dev * 100.0, 1) + "%"});
    }
    table.print(std::cout);
    std::cout << "\nPaper: subsampled machines track the fleet within"
                 " ~10%.\n";
    return 0;
}
