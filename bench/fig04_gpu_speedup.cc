/**
 * @file
 * Reproduces Figure 4: GPU speedup over a CPU core across batch sizes
 * for every model, the batch size at which the GPU starts to win
 * (annotated in the paper's figure), and the fraction of GPU time
 * spent loading data (60-80% in the paper).
 */

#include "bench/bench_common.hh"
#include "costmodel/cpu_cost.hh"
#include "costmodel/gpu_cost.hh"

using namespace deeprecsys;

int
main()
{
    printBanner(std::cout, "Figure 4: GPU speedup over CPU vs batch size");
    const std::vector<size_t> batches = {1, 8, 64, 256, 1024};

    std::vector<std::string> headers = {"Model"};
    for (size_t b : batches)
        headers.push_back("b=" + std::to_string(b));
    headers.push_back("GPU wins at");
    headers.push_back("xfer frac (b=64)");
    TextTable table(std::move(headers));

    for (ModelId id : allModelIds()) {
        const ModelProfile p = ModelProfile::forModel(id);
        const CpuCostModel cpu(p, CpuPlatform::skylake());
        const GpuCostModel gpu(p, GpuPlatform::gtx1080Ti());

        std::vector<std::string> row = {p.name};
        for (size_t b : batches)
            row.push_back(TextTable::num(gpu.speedupOverCpu(cpu, b), 2));
        const size_t cross = gpu.crossoverBatch(cpu);
        row.push_back(cross ? std::to_string(cross) : ">1024");
        row.push_back(TextTable::num(
            gpu.transferSeconds(64) / gpu.querySeconds(64) * 100.0, 0)
            + "%");
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    return 0;
}
