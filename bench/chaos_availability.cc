/**
 * @file
 * Availability under chaos: crash/gray/network fault injection over a
 * sharded two-stage tier, with and without replication, failover, and
 * hedged requests.
 *
 * The fault layer (cluster/fault_plan.hh) makes machine failure a
 * first-class event: seeded fail-stop crashes with timed repair, gray
 * straggler windows, and transient network-hop degradation, all
 * expanded into one deterministic schedule before the run. This bench
 * measures what that chaos costs and what the recovery machinery buys
 * back. The main grid drives the same 8-machine DLRM-RMC2 tier
 * through four chaos levels (calm, gray-only, moderate, heavy) under
 * three serving postures:
 *
 *   - single-copy: one replica per table, no failover budget — the
 *     naive tier every crash hurts. Queries on or routed through a
 *     dead machine are lost outright.
 *   - replicated: every table on >= 2 machines
 *     (PlacementSpec::minReplicas), shard-aware routing re-covers a
 *     query's tables from surviving replicas, and killed queries fail
 *     over with exponential backoff that outlives the repair window.
 *   - replicated+hedge: the same, plus tail-at-scale hedged requests
 *     — straggling fan-out parts are duplicated on another replica
 *     holding their tables and the first answer wins. The table is
 *     honest about what that buys on this tier: crash *saves* and
 *     availability insurance, not a smaller p99 — duplicates are
 *     real work on the one alternate replica, issued on a load
 *     signal that gray machines lie to.
 *
 * Availability is completed / offered (no admission control is
 * configured, so nothing is shed and the three-way conservation
 * algebra offered == completed + droppedFinal + lost pins every
 * query's fate; asserted per cell). The headline acceptance, asserted
 * on the full grid: under heavy chaos the single-copy tier loses
 * >= 5% of its queries while replicated+hedge serves >= 99%.
 *
 * A correlated-failure section crashes two machines *together* (a
 * rack loss) — the case that defeats per-machine failure math — and
 * an observed run writes the full failure timeline (machine_down /
 * machine_up / failover / hedge / lost instants) as a Chrome trace
 * for the schema check in CI.
 *
 * Usage: chaos_availability [--smoke] [--trace F] [out.json]
 * --smoke shrinks the traces (CI); --trace writes the observed run's
 * trace-event JSON; the optional path writes the grid as a JSON array
 * (CI archives it as BENCH_chaos.json). Output is deterministic and
 * bitwise identical at every DRS_THREADS value.
 */

#include <array>
#include <cstring>
#include <fstream>
#include <string>

#include "bench/bench_common.hh"
#include "cluster/cluster_sim.hh"
#include "cluster/shard_placement.hh"
#include "loadgen/query_stream.hh"
#include "obs/observer.hh"

using namespace deeprecsys;

namespace {

/**
 * The tier under chaos: 8 DLRM-RMC2 machines behind shard-aware
 * routing with a two-stage join, every table placed on at least
 * @p min_replicas machines. Replication is paid for in memory: the
 * RMC2 tables total ~8.2 GB, so two copies need more than the
 * historical 2 GB per machine — the replicated tier runs 3 GB
 * machines, exactly the capacity-for-availability trade a real fleet
 * makes.
 */
ClusterConfig
shardedTier(uint32_t min_replicas)
{
    const ModelProfile profile = ModelProfile::forModel(ModelId::DlrmRmc2);
    ClusterConfig cluster;
    for (size_t m = 0; m < 8; m++) {
        SchedulerPolicy policy;
        policy.perRequestBatch = 256;
        SimConfig machine{CpuCostModel(profile, CpuPlatform::skylake()),
                          std::nullopt, policy, 0.05, 1.0};
        machine.memoryBytes = min_replicas > 1 ? 3'000'000'000ULL
                                               : 2'000'000'000ULL;
        cluster.machines.push_back(machine);
    }
    cluster.network.hopSeconds = 150e-6;
    cluster.network.gigabytesPerSecond = 12.5;
    const std::vector<EmbeddingTableInfo> tables =
        embeddingTables(modelConfig(ModelId::DlrmRmc2));
    PlacementSpec placement_spec;
    placement_spec.strategy = PlacementStrategy::GreedyBySize;
    placement_spec.minReplicas = min_replicas;
    const ShardPlacement placement = ShardPlacement::build(
        tables, machineMemoryBudgets(cluster.machines), placement_spec);
    drs_assert(placement.feasible(), "chaos tier placement infeasible");
    drs_assert(placement.replicatedFor(min_replicas),
               "placement missed its replication floor");
    TableSetSpec table_set;
    table_set.numTables = static_cast<uint32_t>(
        modelConfig(ModelId::DlrmRmc2).numTables);
    table_set.tablesPerQuery = 8;
    cluster.sharding = ShardingConfig{placement, table_set};
    return cluster;
}

/** One chaos intensity of the grid. */
struct Level
{
    const char* name;
    double crashesPerHour;
    double grayPerHour;
};

/** One serving posture of the grid. */
struct Setup
{
    const char* name;
    uint32_t minReplicas;    ///< placement floor (1 = single copy)
    uint32_t faultTolerance; ///< FaultPlan replication validator
    uint32_t maxFailovers;   ///< kill-then-re-present budget
    double hedgeDelaySeconds;///< 0 = no hedging
};

/** One measured grid cell (kept numeric so asserts can run on it). */
struct CellResult
{
    size_t level = 0;
    size_t setup = 0;
    double availability = 0.0;
    std::vector<std::string> row;
};

} // namespace

int
main(int argc, char** argv)
{
    bool smoke = false;
    std::string json_path;
    std::string trace_path;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc)
            trace_path = argv[++i];
        else
            json_path = argv[i];
    }

    const double qps = 1000.0;
    const size_t queries = smoke ? 6000 : 30000;
    const double repair_s = 1.5;

    printBanner(std::cout,
                "Availability under chaos (DLRM-RMC2 x 8, sharded "
                "two-stage tier, " +
                    TextTable::num(qps, 0) + " QPS)");

    // Two placements of the same tables on the same machines: the
    // only difference the grid studies is how many copies exist.
    const ClusterConfig tier_single = shardedTier(1);
    const ClusterConfig tier_replicated = shardedTier(2);

    // Chaos levels in crashes (and gray windows) per machine-hour,
    // compressed onto a seconds-long trace: "heavy" takes each
    // machine down roughly once per quarter-minute for 1.5 s, a
    // downtime fraction no production fleet would tolerate — exactly
    // the regime where replication has to carry the tier.
    const std::vector<Level> levels = {
        {"calm", 0.0, 0.0},
        {"gray", 0.0, 120.0},
        {"moderate", 60.0, 30.0},
        {"heavy", 240.0, 120.0},
    };
    const std::vector<Setup> setups = {
        {"single-copy", 1, 0, 0, 0.0},
        {"replicated", 2, 2, 4, 0.0},
        // Hedge well past the healthy tail (calm p99 ~18 ms): a delay
        // down in the body of the latency distribution duplicates
        // most of the offered load and the extra work *causes* the
        // overload it was meant to dodge.
        {"replicated+hedge", 2, 2, 4, 0.05},
    };

    struct Cell
    {
        size_t level;
        size_t setup;
    };
    std::vector<Cell> grid;
    for (size_t l = 0; l < levels.size(); l++) {
        for (size_t s = 0; s < setups.size(); s++)
            grid.push_back({l, s});
    }

    const auto cells = bench::sweepMap(grid, [&](const Cell& cell) {
        const Level& level = levels[cell.level];
        const Setup& setup = setups[cell.setup];

        // One drawn population for every cell: the grid varies chaos
        // and recovery, never the traffic.
        LoadSpec load;
        load.arrivalSeed = 0xc4a05;
        load.sizeSeed = 0xc4a06;
        TraceTemplate tmpl(load);
        tmpl.ensure(queries);
        const QueryTrace trace = tmpl.materialize(qps, queries);

        ClusterConfig cfg = setup.minReplicas > 1 ? tier_replicated
                                                  : tier_single;
        cfg.faults.crashesPerHour = level.crashesPerHour;
        cfg.faults.grayPerHour = level.grayPerHour;
        cfg.faults.repairSeconds = repair_s;
        cfg.faults.faultTolerance = setup.faultTolerance;
        cfg.faults.maxFailovers = setup.maxFailovers;
        // The failover backoff ladder (0.25, 0.5, 1, 2 s) outlives
        // the repair window, so a query whose tables are briefly
        // uncovered wants to retry *after* the machine returns.
        cfg.faults.failoverDelaySeconds = 0.25;
        cfg.hedge.delaySeconds = setup.hedgeDelaySeconds;

        RoutingSpec routing;
        routing.kind = RoutingKind::ShardAware;
        const ClusterResult r = ClusterSimulator(cfg).run(trace, routing);
        assertFaultConservation(r.overload, r.faults, r.numDispatched,
                                r.numCompleted, trace.size());

        CellResult out;
        out.level = cell.level;
        out.setup = cell.setup;
        out.availability = static_cast<double>(r.numCompleted) /
            static_cast<double>(trace.size());
        out.row = {
            level.name,
            setup.name,
            TextTable::num(100.0 * out.availability, 3),
            TextTable::num(static_cast<int64_t>(r.faults.crashes)),
            TextTable::num(static_cast<int64_t>(r.faults.lost)),
            TextTable::num(static_cast<int64_t>(r.faults.failovers)),
            TextTable::num(static_cast<int64_t>(r.faults.unroutable)),
            TextTable::num(static_cast<int64_t>(r.faults.hedged)),
            TextTable::num(static_cast<int64_t>(r.faults.hedgeWins +
                                                r.faults.hedgeSaves)),
            TextTable::num(r.p99Ms(), 1),
            TextTable::num(r.tailMs(99.9), 1),
        };
        return out;
    });

    TextTable table({"chaos", "posture", "avail %", "crashes", "lost",
                     "failovers", "unroutable", "hedged", "hedge won",
                     "p99 (ms)", "p99.9 (ms)"});
    for (const CellResult& cell : cells)
        table.addRow(cell.row);
    table.print(std::cout);

    // The acceptance claims, on the full-size grid (the smoke traces
    // are long enough for CI byte-diffs, not for stable loss rates).
    std::vector<std::array<double, 3>> avail(levels.size(),
                                             {0.0, 0.0, 0.0});
    for (const CellResult& cell : cells)
        avail[cell.level][cell.setup] = cell.availability;
    for (size_t l = 0; l < levels.size(); l++) {
        drs_assert(avail[l][1] + 1e-9 >= avail[l][0],
                   "replication lowered availability");
        drs_assert(avail[l][0] <= 1.0 && avail[l][2] <= 1.0,
                   "availability above 1 — conservation is broken");
    }
    const size_t heavy = levels.size() - 1;
    if (!smoke) {
        drs_assert(avail[heavy][0] <= 0.95,
                   "single-copy tier survived heavy chaos unharmed — "
                   "the chaos schedule is not biting");
        drs_assert(avail[heavy][2] >= 0.99,
                   "replicated+hedge tier lost more than 1% under "
                   "heavy chaos");
    }

    std::cout
        << "\nCalm rows are the fault-free tier: every posture serves"
           " 100% and the fault books are zero. Under chaos the"
           " single-copy tier has no answer — a crash destroys the"
           " only replica of its tables, so in-flight queries die and"
           " arrivals touching those tables are unroutable until"
           " repair; each is a permanent loss. Its *latency* columns"
           " still look clean: the queries a crash would have made"
           " slow are exactly the ones it lost, so the single-copy"
           " tail is survivor bias, not health. Replication gives the"
           " router somewhere else to go (unroutable only when every"
           " holder of a table is down at once) and the failover"
           " ladder re-presents killed queries until past the repair"
           " window, so losses collapse to zero - the cost shows up"
           " in p99, not availability. Hedging is availability"
           " insurance more than a tail cure here: a hedge whose"
           " partner dies in a crash saves the query a failover round"
           " trip (the hedge-won column), but the duplicates are real"
           " work, and because a gray machine lies to the load signal"
           " (slow service, short-looking queue), early-window hedges"
           " can land on the very straggler they were dodging - the"
           " gray row's p99 is the price of hedging on a signal that"
           " cannot see speed.\n";

    // --------------------------------------------- correlated failure
    // Independent-failure math says two simultaneous crashes are
    // vanishingly rare; racks and power domains disagree. Machines 0
    // and 1 crash *together* one second in — with tables replicated
    // across that pair, both copies vanish at once, the case naive
    // replica placement cannot survive without failover patience.
    printBanner(std::cout,
                "Correlated failure: machines 0 and 1 crash together");

    TextTable corr_table({"posture", "avail %", "lost", "failovers",
                          "unroutable", "p99 (ms)"});
    double corr_avail[2] = {};
    for (size_t s = 0; s < 2; s++) {
        const Setup& setup = setups[s];
        LoadSpec load;
        load.arrivalSeed = 0xc4a05;
        load.sizeSeed = 0xc4a06;
        TraceTemplate tmpl(load);
        tmpl.ensure(queries);
        const QueryTrace trace = tmpl.materialize(qps, queries);

        ClusterConfig cfg = setup.minReplicas > 1 ? tier_replicated
                                                  : tier_single;
        cfg.faults.correlatedCrashSeconds = 1.0;
        cfg.faults.correlatedCrashMachines = 2;
        cfg.faults.repairSeconds = repair_s;
        cfg.faults.faultTolerance = setup.faultTolerance;
        cfg.faults.maxFailovers = setup.maxFailovers;
        cfg.faults.failoverDelaySeconds = 0.25;

        RoutingSpec routing;
        routing.kind = RoutingKind::ShardAware;
        const ClusterResult r = ClusterSimulator(cfg).run(trace, routing);
        assertFaultConservation(r.overload, r.faults, r.numDispatched,
                                r.numCompleted, trace.size());
        corr_avail[s] = static_cast<double>(r.numCompleted) /
            static_cast<double>(trace.size());
        corr_table.addRow({
            setup.name,
            TextTable::num(100.0 * corr_avail[s], 3),
            TextTable::num(static_cast<int64_t>(r.faults.lost)),
            TextTable::num(static_cast<int64_t>(r.faults.failovers)),
            TextTable::num(static_cast<int64_t>(r.faults.unroutable)),
            TextTable::num(r.p99Ms(), 1),
        });
    }
    corr_table.print(std::cout);
    drs_assert(corr_avail[0] < 1.0,
               "correlated crash cost the single-copy tier nothing");
    drs_assert(corr_avail[1] + 1e-9 >= corr_avail[0],
               "replication lowered availability under correlated "
               "failure");

    std::cout
        << "\nThe pair takes a quarter of the fleet's tables down in"
           " one instant. Single-copy loses every query that touches"
           " them for the whole repair window. The replicated tier"
           " can still lose *coverage* — a table whose two copies both"
           " live on the crashed pair is gone too — but its failover"
           " ladder keeps re-presenting those queries until the"
           " machines return, converting what would be losses into"
           " latency.\n";

    // ------------------------------------------------- observed run
    // One run with the full observer attached: heavy chaos, hedging
    // on, but a stingy failover budget on the *default* quick backoff
    // so some queries exhaust it — this run exists to emit every
    // failure-path instant (machine_down, machine_up, failover,
    // hedge, lost) into one Chrome trace for the schema check in CI,
    // and it asserts each counter is live so the check cannot rot.
    printBanner(std::cout,
                "Observed run: failure timeline for the trace schema");
    {
        const size_t obs_queries = 6000;
        LoadSpec load;
        load.arrivalSeed = 0xc4a05;
        load.sizeSeed = 0xc4a06;
        TraceTemplate tmpl(load);
        tmpl.ensure(obs_queries);
        const QueryTrace trace = tmpl.materialize(qps, obs_queries);

        ClusterConfig cfg = tier_replicated;
        cfg.faults.crashesPerHour = 600.0;
        cfg.faults.grayPerHour = 300.0;
        // The correlated pair-crash removes both copies of the tables
        // replicated across machines 0 and 1; with a single quick
        // failover the retry lands inside the repair window, so some
        // queries exhaust the budget and emit `lost`.
        cfg.faults.correlatedCrashSeconds = 1.0;
        cfg.faults.correlatedCrashMachines = 2;
        cfg.faults.repairSeconds = repair_s;
        cfg.faults.faultTolerance = 2;
        cfg.faults.maxFailovers = 1;
        cfg.hedge.delaySeconds = 0.01;

        obs::RunObserver observer(obs::ObsConfig::full(0.05),
                                  cfg.machines.size());
        ClusterSimulator sim(cfg);
        sim.setObserver(&observer);
        RoutingSpec routing;
        routing.kind = RoutingKind::ShardAware;
        const ClusterResult r = sim.run(trace, routing);
        assertFaultConservation(r.overload, r.faults, r.numDispatched,
                                r.numCompleted, trace.size());
        drs_assert(r.faults.crashes > 0 && r.faults.recoveries > 0,
                   "observed run saw no crash/repair cycle");
        drs_assert(r.faults.failovers > 0,
                   "observed run emitted no failover instants");
        drs_assert(r.faults.lost > 0,
                   "observed run emitted no lost instants");
        drs_assert(r.faults.hedged > 0,
                   "observed run emitted no hedge instants");

        std::cout << "availability "
                  << TextTable::num(
                         100.0 * static_cast<double>(r.numCompleted) /
                             static_cast<double>(trace.size()),
                         3)
                  << " % | crashes "
                  << TextTable::num(
                         static_cast<int64_t>(r.faults.crashes))
                  << ", failovers "
                  << TextTable::num(
                         static_cast<int64_t>(r.faults.failovers))
                  << ", lost "
                  << TextTable::num(static_cast<int64_t>(r.faults.lost))
                  << ", hedged "
                  << TextTable::num(
                         static_cast<int64_t>(r.faults.hedged))
                  << " (" << TextTable::num(static_cast<int64_t>(
                                 r.faults.hedgeWins))
                  << " won, "
                  << TextTable::num(
                         static_cast<int64_t>(r.faults.hedgeSaves))
                  << " saved) | "
                  << TextTable::num(
                         static_cast<int64_t>(observer.numTraceEvents()))
                  << " trace events\n";

        if (!trace_path.empty() && observer.writeTraceFile(trace_path))
            std::cout << "wrote " << trace_path << "\n";
    }

    if (!json_path.empty()) {
        std::ofstream json(json_path);
        table.printJson(json);
        std::cout << "wrote " << json_path << "\n";
    }
    return 0;
}
