/**
 * @file
 * Reproduces Table I: architectural features of the eight
 * recommendation models, augmented with the derived resource profile
 * (FLOPs, embedding traffic, logical table storage) each configuration
 * implies.
 */

#include <sstream>

#include "bench/bench_common.hh"
#include "costmodel/model_profile.hh"

using namespace deeprecsys;

namespace {

std::string
dimsToString(const std::vector<size_t>& dims)
{
    if (dims.empty())
        return "-";
    std::ostringstream oss;
    for (size_t i = 0; i < dims.size(); i++) {
        if (i)
            oss << "-";
        oss << dims[i];
    }
    return oss.str();
}

std::string
poolingName(Pooling p)
{
    switch (p) {
      case Pooling::Sum: return "Sum";
      case Pooling::Mean: return "Mean";
      case Pooling::Concat: return "Concat";
      default: return "?";
    }
}

} // namespace

int
main()
{
    printBanner(std::cout, "Table I: model zoo configurations");
    TextTable table({"Model", "Company", "Domain", "Dense-FC",
                     "Predict-FC", "Tables", "Lookups", "Pooling",
                     "SeqLen", "Tasks"});
    for (ModelId id : allModelIds()) {
        const ModelConfig cfg = modelConfig(id);
        table.addRow({cfg.name, cfg.company, cfg.domain,
                      dimsToString(cfg.denseFcDims),
                      dimsToString(cfg.predictFcDims),
                      std::to_string(cfg.numTables),
                      std::to_string(cfg.lookupsPerTable),
                      poolingName(cfg.pooling),
                      cfg.seqLen ? std::to_string(cfg.seqLen) : "-",
                      std::to_string(cfg.numTasks)});
    }
    table.print(std::cout);

    printBanner(std::cout, "Derived per-sample resource profile");
    TextTable derived({"Model", "FC MFLOPs", "Attn MFLOPs",
                       "GRU MFLOPs", "Emb KB/sample", "Input B/sample",
                       "Logical tables GB"});
    for (ModelId id : allModelIds()) {
        const ModelProfile p = ModelProfile::forModel(id);
        derived.addRow({p.name,
                        TextTable::num(p.denseFlopsPerSample / 1e6, 2),
                        TextTable::num(p.attnFlopsPerSample / 1e6, 2),
                        TextTable::num(p.recFlopsPerSample / 1e6, 2),
                        TextTable::num(p.embBytesPerSample / 1024.0, 1),
                        TextTable::num(p.inputBytesPerSample, 0),
                        TextTable::num(p.logicalEmbeddingBytes / 1e9, 2)});
    }
    derived.print(std::cout);
    return 0;
}
