/**
 * @file
 * Reproduces Table II: the runtime bottleneck class and tail-latency
 * target of each model. The bottleneck is derived two ways — from the
 * analytical cost model and from measured kernel execution — and
 * compared against the paper's classification.
 */

#include "bench/bench_common.hh"
#include "costmodel/cpu_cost.hh"
#include "models/rec_model.hh"

using namespace deeprecsys;

namespace {

/** Dominant component per the analytical cost model at batch 64. */
const char*
modeledBottleneck(const ModelProfile& p)
{
    const CpuCostModel cost(p, CpuPlatform::skylake());
    const double fc = cost.fcSeconds(64, 20);
    const double emb = cost.embeddingSeconds(64, 20);
    const double attn = cost.attentionSeconds(64, 20);
    const double rec = cost.recurrentSeconds(64);
    if (rec >= fc && rec >= emb && rec >= attn)
        return "Recurrent";
    if (attn + emb > fc && p.attnFlopsPerSample > 0)
        return "Embedding+Attention";
    if (emb >= fc)
        return "Embedding";
    return "MLP";
}

const char*
paperBottleneck(ModelId id)
{
    switch (id) {
      case ModelId::DlrmRmc1:
      case ModelId::DlrmRmc2:
        return "Embedding";
      case ModelId::Din:
        return "Embedding+Attention";
      case ModelId::Dien:
        return "Recurrent";
      default:
        return "MLP";
    }
}

} // namespace

int
main()
{
    printBanner(std::cout, "Table II: runtime bottleneck and SLA targets");
    TextTable table({"Model", "Paper bottleneck", "Modeled bottleneck",
                     "Measured dominant op", "SLA low (ms)",
                     "SLA medium (ms)", "SLA high (ms)"});

    for (ModelId id : allModelIds()) {
        const ModelConfig cfg = modelConfig(id);
        const ModelProfile p = ModelProfile::forModel(id);

        ModelScale scale;
        scale.maxPhysicalRows = 1ull << 15;
        const RecModel model(cfg, 17, scale);
        Rng rng(29);
        const OperatorStats stats = model.measureBreakdown(64, 2, rng);

        table.addRow({cfg.name, paperBottleneck(id),
                      modeledBottleneck(p),
                      opClassName(stats.dominant()),
                      TextTable::num(slaTargetMs(cfg, SlaTier::Low), 1),
                      TextTable::num(slaTargetMs(cfg, SlaTier::Medium), 1),
                      TextTable::num(slaTargetMs(cfg, SlaTier::High), 1)});
    }
    table.print(std::cout);
    return 0;
}
