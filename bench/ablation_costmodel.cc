/**
 * @file
 * Ablation study of the cost-model terms that DESIGN.md credits for
 * the paper's results. Each ablation disables one mechanism and
 * re-runs the relevant experiment, showing that the reproduced effect
 * genuinely comes from that mechanism:
 *
 *  A1  gather batching efficiency -> large-batch preference of
 *      embedding-bound models (Figures 9/12b)
 *  A2  LLC contention/thrash -> the Broadwell request-parallel
 *      penalty (Figure 12c)
 *  A3  per-request dispatch overhead -> the cost of over-splitting
 *  A4  PCIe transfer cost -> the GPU offload threshold (Figure 10)
 */

#include "bench/bench_common.hh"
#include "costmodel/cpu_cost.hh"
#include "costmodel/gpu_cost.hh"
#include "sim/qps_search.hh"

using namespace deeprecsys;
using namespace deeprecsys::bench;

namespace {

/** Tuned batch and QPS for RMC1 under given CPU cost params. */
std::pair<size_t, double>
tuneBatch(const CpuCostParams& params, ModelId id, double sla_ms,
          const CpuPlatform& platform = CpuPlatform::skylake())
{
    const ModelProfile profile = ModelProfile::forModel(id);
    const CpuCostModel cost(profile, platform, params);
    QpsSearchSpec spec;
    spec.slaMs = sla_ms;
    spec.numQueries = benchQueries;

    SchedulerPolicy policy;
    double best_qps = -1.0;
    size_t best_batch = 1;
    size_t strikes = 0;
    for (size_t batch = 1; batch <= 1024; batch *= 2) {
        policy.perRequestBatch = batch;
        SimConfig sim{cost, std::nullopt, policy, 0.05, 1.0};
        const double qps = findMaxQps(sim, spec).maxQps;
        if (qps > best_qps * 1.02 || best_qps < 0.0) {
            best_qps = qps;
            best_batch = batch;
            strikes = 0;
        } else if (++strikes >= 2) {
            break;
        }
    }
    return {best_batch, best_qps};
}

} // namespace

int
main()
{
    // ---- A1: remove the gather batching benefit ----
    printBanner(std::cout,
                "A1: embedding gather efficiency flat vs batched "
                "(DLRM-RMC1, medium)");
    {
        CpuCostParams baseline;
        CpuCostParams flat = baseline;
        // Pin gather efficiency at (roughly) the unbatched level so
        // batching no longer buys DRAM bandwidth.
        flat.gatherHalfBatch = 1e12;
        flat.gatherEffFloor = 0.5;
        TextTable t({"gather model", "optimal batch", "QPS@opt",
                     "QPS@batch8", "batching benefit"});
        for (const auto& [label, params] :
             {std::pair<const char*, CpuCostParams&>{
                  "batch-dependent (default)", baseline},
              {"flat (ablated)", flat}}) {
            const auto opt = tuneBatch(params, ModelId::DlrmRmc1, 100.0);
            const ModelProfile profile =
                ModelProfile::forModel(ModelId::DlrmRmc1);
            const CpuCostModel cost(profile, CpuPlatform::skylake(),
                                    params);
            QpsSearchSpec spec;
            spec.slaMs = 100.0;
            spec.numQueries = benchQueries;
            SchedulerPolicy small;
            small.perRequestBatch = 8;
            SimConfig sim{cost, std::nullopt, small, 0.05, 1.0};
            const double qps8 = findMaxQps(sim, spec).maxQps;
            t.addRow({label, std::to_string(opt.first),
                      TextTable::num(opt.second, 0),
                      TextTable::num(qps8, 0),
                      TextTable::num(opt.second / qps8, 2) + "x"});
        }
        t.print(std::cout);
        std::cout << "The DRAM batching term is where the embedding-"
                     "bound model's gain from large batches comes"
                     " from; pinned efficiency flattens it.\n";
    }

    // ---- A2: remove cache contention ----
    printBanner(std::cout,
                "A2: LLC contention on vs off (DLRM-RMC3 on Broadwell, "
                "175ms)");
    {
        CpuCostParams baseline;
        CpuCostParams nocontention = baseline;
        nocontention.inclusiveContention = 0.0;
        nocontention.exclusiveContention = 0.0;
        nocontention.inclusiveThrashWeight = 0.0;
        nocontention.exclusiveThrashWeight = 0.0;
        const auto with = tuneBatch(baseline, ModelId::DlrmRmc3, 175.0,
                                    CpuPlatform::broadwell());
        const auto without = tuneBatch(nocontention, ModelId::DlrmRmc3,
                                       175.0, CpuPlatform::broadwell());
        TextTable t({"contention model", "optimal batch", "QPS"});
        t.addRow({"inclusive-LLC thrash (default)",
                  std::to_string(with.first),
                  TextTable::num(with.second, 0)});
        t.addRow({"no contention (ablated)",
                  std::to_string(without.first),
                  TextTable::num(without.second, 0)});
        t.print(std::cout);
        std::cout << "Contention is what Broadwell's batch preference"
                     " and its QPS gap versus Skylake come from.\n";
    }

    // ---- A3: remove per-request overhead ----
    printBanner(std::cout,
                "A3: request dispatch overhead on vs off (NCF, medium)");
    {
        CpuCostParams baseline;
        CpuCostParams free_dispatch = baseline;
        free_dispatch.requestOverheadS = 0.0;
        const auto with = tuneBatch(baseline, ModelId::Ncf, 5.0);
        const auto without = tuneBatch(free_dispatch, ModelId::Ncf, 5.0);
        TextTable t({"dispatch cost", "optimal batch", "QPS"});
        t.addRow({"150us/request (default)", std::to_string(with.first),
                  TextTable::num(with.second, 0)});
        t.addRow({"free (ablated)", std::to_string(without.first),
                  TextTable::num(without.second, 0)});
        t.print(std::cout);
        std::cout << "With free dispatch, fine-grained splitting stops"
                     " costing throughput, so the optimum moves to"
                     " smaller batches / pure request parallelism.\n";
    }

    // ---- A4: remove the PCIe transfer cost ----
    printBanner(std::cout,
                "A4: GPU transfer cost on vs off (DLRM-RMC1, medium)");
    {
        const ModelProfile profile =
            ModelProfile::forModel(ModelId::DlrmRmc1);
        GpuPlatform real = GpuPlatform::gtx1080Ti();
        GpuPlatform free_pcie = real;
        free_pcie.pcieBwGBs = 1e6;      // effectively instantaneous
        free_pcie.pcieLatencyS = 0.0;

        TextTable t({"transfer model", "crossover batch",
                     "speedup @1024", "xfer frac @64"});
        for (const auto& [label, platform] :
             {std::pair<const char*, GpuPlatform&>{"PCIe (default)",
                                                   real},
              {"free transfers (ablated)", free_pcie}}) {
            const CpuCostModel cpu(profile, CpuPlatform::skylake());
            const GpuCostModel gpu(profile, platform);
            t.addRow({label,
                      std::to_string(gpu.crossoverBatch(cpu)),
                      TextTable::num(gpu.speedupOverCpu(cpu, 1024), 1) +
                          "x",
                      TextTable::num(gpu.transferSeconds(64) /
                                         gpu.querySeconds(64) * 100.0,
                                     0) + "%"});
        }
        t.print(std::cout);
        std::cout << "Data loading is what pushes the CPU/GPU"
                     " crossover to larger queries - the premise of"
                     " the query-size offload threshold (Figure 10).\n";
    }
    return 0;
}
