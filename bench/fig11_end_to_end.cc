/**
 * @file
 * Reproduces Figure 11, the paper's headline result: throughput (QPS)
 * and power efficiency (QPS/Watt) of DeepRecSched-CPU and
 * DeepRecSched-GPU against the static production baseline, across all
 * eight models and three tail-latency tiers, normalized per model to
 * the baseline at the low tier. Paper geomeans: DRS-CPU 1.7x/2.1x/2.7x
 * and DRS-GPU 4.0x/5.1x/5.8x QPS at low/medium/high.
 */

#include <map>

#include "bench/bench_common.hh"

using namespace deeprecsys;
using namespace deeprecsys::bench;

int
main()
{
    struct Cell
    {
        double qps = 0.0;
        double qpw = 0.0;
    };
    // results[model][tier] per scheduler.
    std::map<ModelId, std::map<SlaTier, Cell>> base, cpu, gpu;

    for (ModelId id : allModelIds()) {
        DeepRecInfra cpu_infra(defaultInfra(id));
        DeepRecInfra gpu_infra(defaultInfra(id, /*gpu=*/true));
        for (SlaTier tier : allTiers()) {
            const double sla = cpu_infra.slaMs(tier);
            const TuningResult b = DeepRecSched::baseline(cpu_infra, sla);
            const TuningResult c = DeepRecSched::tuneCpu(cpu_infra, sla);
            const TuningResult g = DeepRecSched::tuneGpu(gpu_infra, sla);
            base[id][tier] = {b.qps(), cpu_infra.qpsPerWatt(b.atBest)};
            cpu[id][tier] = {c.qps(), cpu_infra.qpsPerWatt(c.atBest)};
            gpu[id][tier] = {g.qps(), gpu_infra.qpsPerWatt(g.atBest)};
        }
    }

    auto report = [&](const char* title, auto member) {
        printBanner(std::cout, title);
        TextTable table({"Model", "base low", "base med", "base high",
                         "DRS-CPU low", "DRS-CPU med", "DRS-CPU high",
                         "DRS-GPU low", "DRS-GPU med", "DRS-GPU high"});
        std::map<SlaTier, std::vector<double>> cpu_gains, gpu_gains;
        for (ModelId id : allModelIds()) {
            const double norm = base[id][SlaTier::Low].*member;
            std::vector<std::string> row = {modelName(id)};
            for (auto* sched : {&base, &cpu, &gpu}) {
                for (SlaTier tier : allTiers()) {
                    const double v = (*sched)[id][tier].*member / norm;
                    row.push_back(TextTable::num(v, 2));
                    if (sched == &cpu)
                        cpu_gains[tier].push_back(
                            (*sched)[id][tier].*member /
                            base[id][tier].*member);
                    if (sched == &gpu)
                        gpu_gains[tier].push_back(
                            (*sched)[id][tier].*member /
                            base[id][tier].*member);
                }
            }
            table.addRow(std::move(row));
        }
        table.print(std::cout);
        std::cout << "\nGeomean gain over the baseline at the same tier:\n";
        for (SlaTier tier : allTiers()) {
            std::cout << "  " << slaTierName(tier)
                      << ": DRS-CPU " << TextTable::num(
                             geomean(cpu_gains[tier]), 2)
                      << "x, DRS-GPU "
                      << TextTable::num(geomean(gpu_gains[tier]), 2)
                      << "x\n";
        }
    };

    report("Figure 11 (top): QPS normalized to baseline@low",
           &Cell::qps);
    report("Figure 11 (bottom): QPS/Watt normalized to baseline@low",
           &Cell::qpw);
    std::cout << "\nPaper geomeans: QPS DRS-CPU 1.7/2.1/2.7x,"
                 " DRS-GPU 4.0/5.1/5.8x; QPS/W DRS-CPU 1.7/2.1/2.7x,"
                 " DRS-GPU 2.0/2.6/2.9x (low/med/high).\n";
    return 0;
}
