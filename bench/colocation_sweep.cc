/**
 * @file
 * Multi-model colocation study: one consolidated heterogeneous tier
 * serving several Table-1 models concurrently versus N dedicated
 * per-model tiers.
 *
 * A datacenter recommendation fleet serves a zoo, not a model. Running
 * each model on its own tier buys isolation but strands capacity —
 * every tier is provisioned for its own peak — while consolidating
 * the mix onto one tier shares the core pools and lets the planner
 * size for the *blended* load. The cost of consolidation is
 * interference: the per-model FIFO queues share the machine's cores,
 * so an embedding-bound co-tenant's long gather requests sit ahead of
 * a compute-bound model's short requests and stretch its tail, even
 * though batches never mix models (MachineEngine only batch-splits
 * within one part).
 *
 * Two sections measure both sides of that trade:
 *
 *   - Provisioning: planCapacity sizes one consolidated tier for a
 *     three-model mix (DLRM-RMC2 40%, Wide&Deep 40%, NCF 20%) under
 *     each model's own Medium SLA — feasible only when *every*
 *     model's p99 meets its own target — against three dedicated
 *     tiers each sized for its model's share alone. The headline is
 *     machines-consolidated versus the dedicated sum, with per-model
 *     p99 at the consolidated plan reported per model.
 *
 *   - Interference: a fixed tier serving the embedding-bound RMC2
 *     next to the compute-bound Wide&Deep (50/50), versus the same
 *     tier serving the *identical* Wide&Deep query population alone
 *     (the colocated trace filtered to its WnD substream, arrivals
 *     and sizes untouched). The WnD p99 delta is the pure price of
 *     the co-tenant; the golden colocation_sweep.json pins it.
 *
 * Usage: colocation_sweep [--smoke] [out.json]
 * --smoke shrinks the traces (CI); the optional path writes the
 * result table as a JSON array (CI archives it as
 * BENCH_colocation.json). Output is deterministic and bitwise
 * identical at every DRS_THREADS value.
 */

#include <cstring>
#include <fstream>
#include <string>

#include "bench/bench_common.hh"
#include "cluster/capacity_planner.hh"
#include "cluster/model_mix.hh"

using namespace deeprecsys;

namespace {

/** The study's mix entries, batch-tuned like the cluster benches. */
ModelMixEntry
tunedEntry(ModelId id, double fraction)
{
    ModelMixEntry entry = makeMixEntry(id, fraction);
    entry.policy.perRequestBatch = 256;
    return entry;
}

} // namespace

int
main(int argc, char** argv)
{
    bool smoke = false;
    std::string json_path;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else
            json_path = argv[i];
    }

    // One row per (scenario, model) cell of both sections; written as
    // the bench JSON for the serial-vs-parallel CI byte diff.
    TextTable results({"scenario", "machines", "model", "share",
                       "sla (ms)", "p99 (ms)"});

    // ---------------------------------------- consolidated vs dedicated
    const std::vector<ModelMixEntry> mix = {
        tunedEntry(ModelId::DlrmRmc2, 0.4),
        tunedEntry(ModelId::WideAndDeep, 0.4),
        tunedEntry(ModelId::Ncf, 0.2),
    };
    const double total_qps = 5000.0;
    double fleet_sla_ms = 0.0;
    for (const ModelMixEntry& entry : mix)
        fleet_sla_ms = std::max(fleet_sla_ms, entry.slaMs);

    printBanner(std::cout,
                "Capacity: one consolidated tier vs dedicated tiers (" +
                    TextTable::num(total_qps, 0) +
                    " total QPS, per-model Medium SLAs)");

    CapacityPlanSpec consolidated_spec;
    consolidated_spec.unitMachines = {
        colocatedMachine(mix, CpuPlatform::skylake())};
    consolidated_spec.targetQps = total_qps;
    consolidated_spec.slaMs = fleet_sla_ms;
    consolidated_spec.modelMix = mix;
    consolidated_spec.routing.kind = RoutingKind::PowerOfTwoChoices;
    if (smoke) {
        consolidated_spec.queriesPerMachine = 150;
        consolidated_spec.minQueries = 1500;
    }
    const CapacityPlan consolidated = planCapacity(consolidated_spec);
    drs_assert(consolidated.feasible,
               "consolidated plan infeasible — raise maxUnits");
    drs_assert(consolidated.atPlan.perModel.size() == mix.size(),
               "consolidated plan lost per-model books");

    size_t dedicated_total = 0;
    for (size_t k = 0; k < mix.size(); k++) {
        CapacityPlanSpec spec;
        ModelMixEntry alone = mix[k];
        alone.trafficFraction = 1.0;
        spec.unitMachines = {colocatedMachine({alone},
                                              CpuPlatform::skylake())};
        spec.targetQps = total_qps * mix[k].trafficFraction;
        spec.slaMs = mix[k].slaMs;
        spec.routing.kind = RoutingKind::PowerOfTwoChoices;
        if (smoke) {
            spec.queriesPerMachine = 150;
            spec.minQueries = 1500;
        }
        const CapacityPlan plan = planCapacity(spec);
        drs_assert(plan.feasible, "dedicated plan infeasible");
        dedicated_total += plan.machines;
        results.addRow({"dedicated", std::to_string(plan.machines),
                        modelName(mix[k].id),
                        TextTable::num(mix[k].trafficFraction, 2),
                        TextTable::num(mix[k].slaMs, 1),
                        TextTable::num(plan.tailMs(99), 2)});
    }
    for (size_t k = 0; k < mix.size(); k++) {
        const ModelStats& stats = consolidated.atPlan.perModel[k];
        drs_assert(mix[k].slaMs <= 0.0 || stats.p99Ms() <= mix[k].slaMs,
                   "consolidated plan violates a per-model SLA");
        results.addRow({"consolidated",
                        std::to_string(consolidated.machines),
                        modelName(mix[k].id),
                        TextTable::num(mix[k].trafficFraction, 2),
                        TextTable::num(mix[k].slaMs, 1),
                        TextTable::num(stats.p99Ms(), 2)});
    }

    TextTable capacity({"tier", "machines", "p99 checks"});
    capacity.addRow({"dedicated sum", std::to_string(dedicated_total),
                     "each model its own SLA"});
    capacity.addRow({"consolidated", std::to_string(consolidated.machines),
                     "every model its own SLA, one tier"});
    capacity.print(std::cout);
    drs_assert(consolidated.machines <= dedicated_total,
               "consolidation needed MORE machines than dedicated"
               " tiers — interference is overwhelming the blending"
               " gain at this operating point");
    std::cout << "\nThe consolidated tier serves all three models under"
                 " each one's own SLA with "
              << consolidated.machines << " machines vs "
              << dedicated_total << " across dedicated tiers"
              << (consolidated.machines < dedicated_total
                      ? ": blending the NCF trickle into the heavy"
                        " tiers' headroom and pooling the dedicated"
                        " tiers' rounding slack is the consolidation"
                        " saving"
                      : " (the dedicated rounding slack happens to be"
                        " zero at this trace length)")
              << ", and the per-model SLA feasibility check is what"
                 " keeps it honest - a plan only counts if no tenant's"
                 " tail is sacrificed for it.\n\n";

    // ------------------------------------------------- interference
    // Fixed tier size, identical Wide&Deep query population, with and
    // without the embedding-bound co-tenant: the WnD p99 delta is the
    // pure interference price of colocation on the batch scheduler.
    const std::vector<ModelMixEntry> pair = {
        tunedEntry(ModelId::DlrmRmc2, 0.5),
        tunedEntry(ModelId::WideAndDeep, 0.5),
    };
    const size_t tier_machines = 4;
    const double pair_qps = 2600.0;
    const size_t pair_queries = smoke ? 6000 : 24000;

    printBanner(std::cout,
                "Interference: RMC2 (embedding-bound) next to Wide&Deep"
                " (compute-bound), " +
                    std::to_string(tier_machines) + " machines, " +
                    TextTable::num(pair_qps, 0) + " QPS");

    LoadSpec load;
    load.arrivalSeed = 0xc07a0;
    load.sizeSeed = 0xc07a1;
    MixedTraceTemplate mixed(load, mixFractions(pair));
    mixed.ensure(pair_queries);
    const QueryTrace colocated_trace =
        mixed.materialize(pair_qps, pair_queries);

    ClusterConfig colocated_tier;
    for (size_t m = 0; m < tier_machines; m++)
        colocated_tier.machines.push_back(
            colocatedMachine(pair, CpuPlatform::skylake()));
    colocated_tier.modelMix = pair;
    RoutingSpec routing;
    routing.kind = RoutingKind::PowerOfTwoChoices;
    const ClusterResult colocated_run =
        ClusterSimulator(colocated_tier).run(colocated_trace, routing);

    // The dedicated baseline serves the colocated trace's own WnD
    // substream — same queries, same arrival instants — remapped to
    // model 0 on a WnD-only tier of the same size.
    QueryTrace wnd_trace;
    for (const Query& q : colocated_trace) {
        if (q.model != 1)
            continue;
        Query alone = q;
        alone.model = 0;
        wnd_trace.push_back(alone);
    }
    ClusterConfig wnd_tier;
    ModelMixEntry wnd_alone = pair[1];
    wnd_alone.trafficFraction = 1.0;
    for (size_t m = 0; m < tier_machines; m++)
        wnd_tier.machines.push_back(
            colocatedMachine({wnd_alone}, CpuPlatform::skylake()));
    const ClusterResult wnd_run =
        ClusterSimulator(wnd_tier).run(wnd_trace, routing);

    for (size_t k = 0; k < pair.size(); k++) {
        const ModelStats& stats = colocated_run.perModel[k];
        drs_assert(stats.offered ==
                       stats.completed + stats.droppedFinal + stats.lost,
                   "per-model conservation broken in the bench");
        results.addRow({"colocated pair", std::to_string(tier_machines),
                        modelName(pair[k].id),
                        TextTable::num(pair[k].trafficFraction, 2),
                        TextTable::num(pair[k].slaMs, 1),
                        TextTable::num(stats.p99Ms(), 2)});
    }
    results.addRow({"wnd alone", std::to_string(tier_machines),
                    modelName(ModelId::WideAndDeep), "1.00",
                    TextTable::num(pair[1].slaMs, 1),
                    TextTable::num(wnd_run.p99Ms(), 2)});
    results.print(std::cout);

    const double wnd_colocated_p99 = colocated_run.perModel[1].p99Ms();
    const double wnd_alone_p99 = wnd_run.p99Ms();
    drs_assert(wnd_colocated_p99 >= wnd_alone_p99,
               "colocation *improved* WnD's p99 — the interference"
               " scenario is not biting");
    std::cout << "\nSame machines, same Wide&Deep queries: alone its"
                 " p99 is "
              << TextTable::num(wnd_alone_p99, 2)
              << " ms; with RMC2 colocated it is "
              << TextTable::num(wnd_colocated_p99, 2)
              << " ms. Batches never mix models, so the entire delta"
                 " is queueing interference - RMC2's long embedding"
                 " gathers occupy the shared cores and Wide&Deep's"
                 " short dense requests wait behind them. That tail"
                 " tax, against the machine savings above, is the"
                 " colocation trade.\n";

    if (!json_path.empty()) {
        std::ofstream json(json_path);
        results.printJson(json);
        std::cout << "wrote " << json_path << "\n";
    }
    return 0;
}
