/**
 * @file
 * Reproduces Figure 3: operator runtime breakdown of every model at
 * batch size 64, measured from real kernel execution of the model zoo
 * (not the analytical model). DLRM-class models should be dominated
 * by embedding lookups, WnD/NCF/RMC3 by FC, DIN by attention+
 * embedding, DIEN by recurrent layers.
 */

#include "bench/bench_common.hh"
#include "models/rec_model.hh"

using namespace deeprecsys;

int
main()
{
    printBanner(std::cout,
                "Figure 3: measured operator breakdown at batch 64");
    TextTable table({"Model", "FC", "Embedding", "Interaction",
                     "Attention", "Recurrent", "Dominant"});

    for (ModelId id : allModelIds()) {
        // Enough physical rows that embedding gathers leave the cache
        // hierarchy, as they do at production table sizes.
        ModelScale scale;
        scale.maxPhysicalRows = 1ull << 15;
        const RecModel model(modelConfig(id), /*seed=*/17, scale);
        Rng rng(23);
        const OperatorStats stats = model.measureBreakdown(64, 3, rng);

        auto pct = [&](OpClass c) {
            return TextTable::num(stats.fraction(c) * 100.0, 1) + "%";
        };
        table.addRow({modelName(id), pct(OpClass::Fc),
                      pct(OpClass::Embedding), pct(OpClass::Interaction),
                      pct(OpClass::Attention), pct(OpClass::Recurrent),
                      opClassName(stats.dominant())});
    }
    table.print(std::cout);
    std::cout << "\nNote: production embedding tables are tens of GB; the\n"
                 "scaled-down resident tables here understate embedding\n"
                 "time relative to the paper's Figure 3.\n";
    return 0;
}
