/**
 * @file
 * Overload serving: goodput vs offered load under admission control,
 * load shedding, and degraded answers — plus a flash-crowd run where
 * reactive autoscaling and shedding cover the warm-up gap together.
 *
 * Past its latency knee an open-loop tier queues unboundedly: every
 * query is eventually served, long after its answer stopped mattering,
 * so completion throughput looks healthy while goodput (completions
 * within the SLA deadline, quality-weighted) collapses to zero. The
 * sweep drives one fixed tier from 0.5x to 3x of its measured
 * capacity under four router policies — the open-loop baseline, a
 * queue-depth cap, deadline-aware admission (cluster/admission.hh),
 * and deadline admission plus degraded serving (fewer candidates
 * scored per query under pressure) — and charts goodput, shed rate,
 * and tail latency per cell. Past the knee the baseline's p99 grows
 * with the trace length (unbounded in the limit) while the shedding
 * policies hold a finite tail and nonzero goodput.
 *
 * The sharded section drives an 8-machine two-stage RMC2 tier through
 * the same deadline policies: the admission estimator prices the full
 * two-stage critical path (slowest-shard backlog, both service
 * phases, network hops, and the projected second-visit queue wait at
 * the leader), so deadline-mode p99 is asserted within 1.25x of the
 * deadline at every offered rate. A priorities-and-retries section
 * then runs the same tier in deep overload with three priority
 * classes and client retries, printing per-class goodput.
 *
 * The flash-crowd section runs the *elastic* tier (cluster/
 * autoscaler.hh) into a step-function rate spike from a cold start:
 * reactive scaling needs several control ticks plus the warm-up delay
 * to field capacity, and until it does the only choices are unbounded
 * queueing (baseline) or shedding/degrading through the gap. Both
 * runs are asserted conservation-exact per run under the three-way
 * algebra offered == completed + droppedFinal + lost (with zero fault
 * books here, so dispatched == completed still holds).
 *
 * Usage: overload_goodput [--smoke] [out.json]
 * --smoke shrinks the grid and trace (CI); the optional path also
 * writes the sweep table as a JSON array (CI archives it as
 * BENCH_overload.json). Output is deterministic and bitwise identical
 * at every DRS_THREADS value.
 */

#include <cstring>
#include <fstream>
#include <string>

#include "bench/bench_common.hh"
#include "cluster/autoscaler.hh"
#include "cluster/cluster_qps_search.hh"
#include "cluster/shard_placement.hh"
#include "loadgen/query_stream.hh"

using namespace deeprecsys;

namespace {

SimConfig
cpuMachine(size_t batch)
{
    const ModelProfile profile = ModelProfile::forModel(ModelId::DlrmRmc1);
    SchedulerPolicy policy;
    policy.perRequestBatch = batch;
    return SimConfig{CpuCostModel(profile, CpuPlatform::skylake()),
                     std::nullopt, policy, 0.05, 1.0};
}

/** One router policy under test. */
struct Mode
{
    const char* name;
    OverloadConfig overload;
};

/**
 * The four policies of the sweep. Every mode carries the same
 * deadline so goodput is measured identically; they differ only in
 * what the router refuses or shrinks.
 */
std::vector<Mode>
sweepModes(double deadline_s)
{
    OverloadConfig baseline;
    baseline.deadlineSeconds = deadline_s;   // accounting only

    OverloadConfig queue_cap = baseline;
    queue_cap.admission = AdmissionKind::QueueDepth;
    queue_cap.queueDepthCap = 64;

    OverloadConfig deadline = baseline;
    deadline.admission = AdmissionKind::Deadline;

    OverloadConfig degrade = deadline;
    degrade.degrade = true;

    return {{"baseline", baseline},
            {"queue-cap", queue_cap},
            {"deadline", deadline},
            {"deadline+degrade", degrade}};
}

/**
 * A step-function flash crowd: the drawn population arrives at
 * @p base_qps, then from query @p base_count onward the gaps are
 * compressed to @p spike_qps — same queries, same draw order, the
 * spike hits as a rate discontinuity the way a real flash crowd does.
 */
QueryTrace
flashCrowdTrace(const TraceTemplate& tmpl, double base_qps,
                double spike_qps, size_t base_count, size_t total)
{
    QueryTrace trace = tmpl.materialize(base_qps, total);
    const double t_spike = trace[base_count].arrivalSeconds;
    const double compress = base_qps / spike_qps;
    for (size_t i = base_count; i < total; i++) {
        trace[i].arrivalSeconds =
            t_spike + (trace[i].arrivalSeconds - t_spike) * compress;
    }
    return trace;
}

/**
 * The three-way conservation algebra: every offered query ends
 * completed, finally dropped, or lost to a failure
 * (assertFaultConservation in cluster/fault_plan.hh). These runs
 * carry no FaultPlan, so the fault books are all zero and the algebra
 * degenerates to the historical retry-extended equations, including
 * dispatched == completed.
 */
void
assertConservation(const OverloadStats& overload,
                   const FaultStats& faults, uint64_t dispatched,
                   uint64_t completed, size_t trace_size)
{
    assertFaultConservation(overload, faults, dispatched, completed,
                            trace_size);
    drs_assert(overload.droppedQueries.size() == overload.droppedFinal,
               "drop records disagree with the final-drop count");
    drs_assert(overload.degradedQueries.size() == overload.degraded,
               "degrade records disagree with the degrade count");
}

} // namespace

int
main(int argc, char** argv)
{
    bool smoke = false;
    std::string json_path;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else
            json_path = argv[i];
    }

    const double sla_ms = 100.0;
    const double deadline_s = sla_ms / 1e3;
    const size_t tier_machines = 4;
    const size_t queries = smoke ? 2500 : 12000;
    const std::vector<double> multipliers =
        smoke ? std::vector<double>{0.5, 2.0}
              : std::vector<double>{0.5, 0.75, 1.0, 1.5, 2.0, 3.0};

    printBanner(std::cout,
                "Goodput under overload (DLRM-RMC1 x " +
                    TextTable::num(static_cast<int64_t>(tier_machines)) +
                    ", deadline " + TextTable::num(sla_ms, 0) + " ms)");

    // The tier under test and its measured capacity: the knee every
    // multiplier is anchored to.
    ClusterConfig cluster;
    for (size_t m = 0; m < tier_machines; m++)
        cluster.machines.push_back(cpuMachine(256));
    ClusterQpsSpec qps_spec;
    qps_spec.slaMs = sla_ms;
    qps_spec.routing.kind = RoutingKind::PowerOfTwoChoices;
    const ClusterQpsResult capacity =
        findClusterMaxQps(cluster, qps_spec);
    drs_assert(capacity.maxQps > 0.0, "tier cannot meet the SLA at all");
    std::cout << "measured capacity: "
              << TextTable::num(capacity.maxQps, 0)
              << " QPS under p99 <= " << TextTable::num(sla_ms, 0)
              << " ms (" << TextTable::num(static_cast<int64_t>(
                     capacity.evaluations))
              << " bisection evaluations)\n\n";

    const std::vector<Mode> modes = sweepModes(deadline_s);

    struct Cell
    {
        double multiplier;
        size_t mode;
    };
    std::vector<Cell> grid;
    for (double multiplier : multipliers) {
        for (size_t mode = 0; mode < modes.size(); mode++)
            grid.push_back({multiplier, mode});
    }

    const auto rows = bench::sweepMap(grid, [&](const Cell& cell) {
        const Mode& mode = modes[cell.mode];
        const double qps = cell.multiplier * capacity.maxQps;

        // One drawn population per cell, re-timed to the cell's rate:
        // higher multipliers offer the same queries faster.
        TraceTemplate tmpl(LoadSpec{});
        tmpl.ensure(queries);
        const QueryTrace trace = tmpl.materialize(qps, queries);

        ClusterConfig cfg = cluster;
        cfg.overload = mode.overload;
        const ClusterSimulator sim(cfg);
        RoutingSpec routing;
        routing.kind = RoutingKind::PowerOfTwoChoices;
        const ClusterResult r = sim.run(trace, routing);

        assertConservation(r.overload, r.faults, r.numDispatched,
                           r.numCompleted,
                           trace.size());
        // The headline acceptance check: with deadline shedding on,
        // the tier keeps answering past its knee.
        if (cell.multiplier >= 2.0 &&
            mode.overload.admission == AdmissionKind::Deadline) {
            drs_assert(r.overload.goodputQps > 0.0,
                       "shedding tier lost all goodput past the knee");
            drs_assert(r.overload.dropped > 0,
                       "no shedding at 2x capacity");
        }

        const double within_sla = r.overload.measuredCompleted > 0
            ? 100.0 *
                static_cast<double>(r.overload.completedWithinDeadline) /
                static_cast<double>(r.overload.measuredCompleted)
            : 0.0;
        return std::vector<std::string>{
            TextTable::num(cell.multiplier, 2),
            TextTable::num(qps, 0),
            mode.name,
            TextTable::num(r.overload.goodputQps, 0),
            TextTable::num(r.achievedQps, 0),
            TextTable::num(100.0 * r.overload.shedRate(), 1),
            TextTable::num(100.0 * r.overload.degradeRate(), 1),
            TextTable::num(within_sla, 1),
            TextTable::num(r.p99Ms(), 1),
        };
    });

    TextTable table({"load x", "offered qps", "mode", "goodput qps",
                     "achieved qps", "shed %", "degraded %",
                     "within-SLA %", "p99 (ms)"});
    for (const std::vector<std::string>& row : rows)
        table.addRow(row);
    table.print(std::cout);

    std::cout
        << "\nBelow the knee every mode is the same tier: nothing is"
           " shed, nothing is degraded, goodput tracks the offered"
           " rate. Past the knee the baseline keeps accepting work it"
           " cannot finish in time - its p99 grows with the trace"
           " length (unbounded queueing in the limit) and its goodput"
           " collapses even though achieved QPS still looks busy. The"
           " queue-depth cap bounds the damage but is deadline-blind;"
           " deadline admission sheds exactly the queries that are"
           " dead on arrival, holding a finite tail and nonzero"
           " goodput at every overload. Adding degraded serving"
           " shrinks candidate slates before dropping, converting part"
           " of the shed rate into discounted-quality answers - the"
           " goodput column weighs them by (served/original)^q.\n";

    // --------------------------------------- sharded two-stage tier
    // The two-stage join prices a second queue visit at the leader;
    // an estimator that ignores it settles the admitted tail 1.5-2x
    // over the deadline while claiming to enforce it. This section is
    // the tripwire: a sharded RMC2 tier under deadline admission must
    // hold p99 within 1.25x of the deadline at every offered rate
    // (asserted), because the estimator now prices slowest-shard
    // backlog + both service phases + all hops + the projected
    // join-time wait.
    printBanner(std::cout,
                "Sharded two-stage tier (DLRM-RMC2 x 8, deadline " +
                    TextTable::num(sla_ms, 0) + " ms)");

    ClusterConfig sharded;
    {
        const ModelProfile profile =
            ModelProfile::forModel(ModelId::DlrmRmc2);
        for (size_t m = 0; m < 8; m++) {
            SchedulerPolicy policy;
            policy.perRequestBatch = 256;
            SimConfig machine{CpuCostModel(profile, CpuPlatform::skylake()),
                              std::nullopt, policy, 0.05, 1.0};
            machine.memoryBytes = 2'000'000'000ULL;
            sharded.machines.push_back(machine);
        }
        sharded.network.hopSeconds = 150e-6;
        sharded.network.gigabytesPerSecond = 12.5;
        const std::vector<EmbeddingTableInfo> tables =
            embeddingTables(modelConfig(ModelId::DlrmRmc2));
        PlacementSpec placement_spec;
        placement_spec.strategy = PlacementStrategy::GreedyBySize;
        const ShardPlacement placement = ShardPlacement::build(
            tables, machineMemoryBudgets(sharded.machines),
            placement_spec);
        drs_assert(placement.feasible(), "sharded placement infeasible");
        TableSetSpec table_set;
        table_set.numTables = static_cast<uint32_t>(
            modelConfig(ModelId::DlrmRmc2).numTables);
        table_set.tablesPerQuery = 8;
        sharded.sharding = ShardingConfig{placement, table_set};
    }

    const std::vector<double> sharded_rates =
        smoke ? std::vector<double>{3500.0, 5000.0}
              : std::vector<double>{1500.0, 2500.0, 3500.0, 5000.0};
    struct ShardCell
    {
        double qps;
        size_t mode;
    };
    std::vector<ShardCell> sharded_grid;
    for (double qps : sharded_rates) {
        for (size_t mode = 0; mode < modes.size(); mode++)
            sharded_grid.push_back({qps, mode});
    }

    const auto sharded_rows = bench::sweepMap(
        sharded_grid, [&](const ShardCell& cell) {
            const Mode& mode = modes[cell.mode];
            LoadSpec load;
            load.arrivalSeed = 0x600d;
            load.sizeSeed = 0x600e;
            TraceTemplate tmpl(load);
            tmpl.ensure(queries);
            const QueryTrace trace = tmpl.materialize(cell.qps, queries);

            ClusterConfig cfg = sharded;
            cfg.overload = mode.overload;
            RoutingSpec routing;
            routing.kind = RoutingKind::ShardAware;
            const ClusterResult r =
                ClusterSimulator(cfg).run(trace, routing);

            assertConservation(r.overload, r.faults, r.numDispatched,
                               r.numCompleted, trace.size());
            // The tentpole tripwire: deadline admission must actually
            // deliver the deadline on the two-stage critical path.
            if (mode.overload.admission == AdmissionKind::Deadline)
                drs_assert(r.p99Ms() <= 1.25 * sla_ms,
                           "sharded deadline-mode p99 blew the deadline");

            return std::vector<std::string>{
                TextTable::num(cell.qps, 0),
                mode.name,
                TextTable::num(r.overload.goodputQps, 0),
                TextTable::num(100.0 * r.overload.shedRate(), 1),
                TextTable::num(100.0 * r.overload.degradeRate(), 1),
                TextTable::num(r.p99Ms(), 1),
            };
        });

    TextTable sharded_table({"offered qps", "mode", "goodput qps",
                             "shed %", "degraded %", "p99 (ms)"});
    for (const std::vector<std::string>& row : sharded_rows)
        sharded_table.addRow(row);
    sharded_table.print(std::cout);

    std::cout
        << "\nA fanned-out query visits its leader twice: embedding"
           " shards first, then the dense join phase queued *behind*"
           " whatever arrived while the slowest shard finished. The"
           " estimator charges that second visit - slowest-shard"
           " backlog, both service phases, the pooled-embedding hop,"
           " and the projected join-time wait (the leader's current"
           " backlog plus dense phases already committed but not yet"
           " queued) - so the admitted tail settles at the deadline"
           " instead of 1.5-2x over it (asserted at 1.25x above).\n";

    // ------------------------------------- priorities and retries
    // The same sharded tier in deep overload, now with three priority
    // classes and client retries: the router sheds and degrades the
    // least important class first, refused clients re-present with
    // jittered backoff (honouring the router's Retry-After hint), and
    // a storm guard stops retrying into a hopeless queue.
    printBanner(std::cout,
                "Priority classes and client retries (same tier, "
                "deep overload)");

    {
        OverloadConfig overload;
        overload.admission = AdmissionKind::Deadline;
        overload.deadlineSeconds = deadline_s;
        overload.degrade = true;
        overload.priorityClasses = 3;
        overload.maxRetries = 2;

        LoadSpec load;
        load.arrivalSeed = 0x600d;
        load.sizeSeed = 0x600e;
        TraceTemplate tmpl(load);
        tmpl.ensure(queries);
        QueryTrace trace = tmpl.materialize(5000.0, queries);
        assignPriorityClasses(trace, overload.priorityClasses, 0xc1a55);

        ClusterConfig cfg = sharded;
        cfg.overload = overload;
        RoutingSpec routing;
        routing.kind = RoutingKind::ShardAware;
        const ClusterResult r = ClusterSimulator(cfg).run(trace, routing);
        assertConservation(r.overload, r.faults, r.numDispatched,
                           r.numCompleted,
                           trace.size());

        TextTable cls_table({"class", "offered", "shed %", "degraded %",
                             "goodput qps"});
        for (size_t c = 0; c < r.overload.perClass.size(); c++) {
            const ClassOverloadStats& cs = r.overload.perClass[c];
            cls_table.addRow({
                TextTable::num(static_cast<int64_t>(c)),
                TextTable::num(static_cast<int64_t>(cs.offered)),
                TextTable::num(100.0 * cs.shedRate(), 2),
                TextTable::num(
                    cs.offered > 0
                        ? 100.0 * static_cast<double>(cs.degraded) /
                            static_cast<double>(cs.offered)
                        : 0.0,
                    1),
                TextTable::num(cs.goodputQps, 0),
            });
            // Margins must actually order the pain: a more important
            // class never sheds more than a less important one.
            if (c > 0)
                drs_assert(
                    r.overload.perClass[c - 1].shedRate() <=
                        cs.shedRate() + 0.02,
                    "priority ordering inverted in the shed schedule");
        }
        cls_table.print(std::cout);
        std::cout << "retries: "
                  << TextTable::num(
                         static_cast<int64_t>(r.overload.retried))
                  << " re-presented, "
                  << TextTable::num(
                         static_cast<int64_t>(r.overload.droppedFinal))
                  << " finally dropped of "
                  << TextTable::num(
                         static_cast<int64_t>(r.overload.dropped))
                  << " refusals\n";
        std::cout
            << "\nClass 0 (most important) keeps a full-rate deadline"
               " budget; classes 1 and 2 run on tightened budgets and"
               " earlier degrade pressure, so overload lands on the"
               " work that matters least. Refused clients retry after"
               " the router's projected-drain hint; the books close"
               " under offered == admitted + finally-dropped with"
               " every refusal either retried or final (asserted).\n";
    }

    // ------------------------------------------------- flash crowd
    // A cold elastic tier hit by a rate step: 2 machines serving a
    // calm base load, then the spike arrives and reactive scaling
    // needs ticks + warm-up to field the rest of the tier. Shedding
    // covers that gap; the baseline queues through it.
    const size_t flash_machines = 8;
    const double tier_qps =
        capacity.maxQps * static_cast<double>(flash_machines) /
        static_cast<double>(tier_machines);
    const double base_qps = 0.18 * tier_qps;   // calm on 2 machines
    const double spike_qps = 0.85 * tier_qps;  // needs nearly all 8
    const size_t flash_queries = smoke ? 4000 : 16000;
    const size_t base_count = flash_queries / 4;

    printBanner(std::cout,
                "Flash crowd: cold elastic tier, rate step to " +
                    TextTable::num(spike_qps, 0) + " QPS");

    TraceTemplate flash_tmpl{LoadSpec{}};
    flash_tmpl.ensure(flash_queries);
    const QueryTrace flash = flashCrowdTrace(
        flash_tmpl, base_qps, spike_qps, base_count, flash_queries);

    TextTable flash_table({"mode", "dropped", "degraded", "goodput qps",
                           "p99 (ms)", "SLA viol (s)", "serving",
                           "scale events"});
    for (const bool shed : {false, true}) {
        AutoscaleSpec spec;
        for (size_t m = 0; m < flash_machines; m++)
            spec.cluster.machines.push_back(cpuMachine(256));
        spec.routing.kind = RoutingKind::PowerOfTwoChoices;
        spec.slaMs = sla_ms;
        spec.controlIntervalSeconds = 0.25;
        spec.warmupDelaySeconds = 0.5;
        spec.initialMachines = 2;
        spec.cluster.overload.deadlineSeconds = deadline_s;
        if (shed) {
            spec.cluster.overload.admission = AdmissionKind::Deadline;
            spec.cluster.overload.degrade = true;
        }

        ScalingPolicySpec policy;
        policy.kind = ScalingPolicyKind::Reactive;
        policy.minMachines = 2;

        const Autoscaler scaler(spec);
        const AutoscaleResult r = scaler.run(flash, policy);
        assertConservation(r.overload, r.faults, r.numDispatched,
                           r.numCompleted,
                           flash.size());
        if (shed)
            drs_assert(r.overload.goodputQps > 0.0,
                       "flash-crowd shedding lost all goodput");

        flash_table.addRow({
            shed ? "shed+degrade" : "baseline",
            TextTable::num(static_cast<int64_t>(r.overload.dropped)),
            TextTable::num(static_cast<int64_t>(r.overload.degraded)),
            TextTable::num(r.overload.goodputQps, 0),
            TextTable::num(r.p99Ms(), 1),
            TextTable::num(r.slaViolationSeconds, 2),
            TextTable::num(
                static_cast<int64_t>(r.minServingMachines)) +
                ".." +
                TextTable::num(
                    static_cast<int64_t>(r.maxServingMachines)),
            TextTable::num(static_cast<int64_t>(r.scaleEvents.size())),
        });
    }
    flash_table.print(std::cout);

    std::cout
        << "\nBoth runs end with the same warm tier - reactive scaling"
           " reaches the spike's capacity either way (drops jump the"
           " target proportionally, so the shedding run scales up at"
           " least as fast). The difference is the warm-up gap: the"
           " baseline buries the backlog it accumulated while cold in"
           " its p99 and violation minutes, while the shedding run"
           " answers what it can answer in time, degrades what it can"
           " save, and drops the rest at the door. Offered =="
           " completed + droppedFinal + lost holds exactly in every"
           " run (asserted; the fault books are all zero here).\n";

    if (!json_path.empty()) {
        std::ofstream json(json_path);
        table.printJson(json);
        std::cout << "wrote " << json_path << "\n";
    }
    return 0;
}
