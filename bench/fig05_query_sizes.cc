/**
 * @file
 * Reproduces Figure 5: the query working-set-size distribution of
 * production recommendation services against the canonical lognormal
 * (and normal) assumptions — percentile table, p75 marker, and the
 * heavy-tail mass shares the scheduler exploits.
 */

#include <algorithm>
#include <numeric>

#include "bench/bench_common.hh"
#include "loadgen/distributions.hh"

using namespace deeprecsys;

namespace {

std::vector<uint32_t>
sampleSizes(SizeDistKind kind, size_t n)
{
    auto dist = QuerySizeDistribution::byKind(kind, /*seed=*/77);
    std::vector<uint32_t> sizes(n);
    for (auto& s : sizes)
        s = dist.sample();
    std::sort(sizes.begin(), sizes.end());
    return sizes;
}

uint32_t
pct(const std::vector<uint32_t>& sorted, double p)
{
    const size_t idx = std::min(
        sorted.size() - 1,
        static_cast<size_t>(p / 100.0 * sorted.size()));
    return sorted[idx];
}

} // namespace

int
main()
{
    constexpr size_t n = 200000;
    printBanner(std::cout, "Figure 5: query size distributions");
    TextTable table({"Distribution", "p25", "p50", "p75", "p90", "p95",
                     "p99", "max", "mean",
                     "top-25% work share"});
    for (auto kind : {SizeDistKind::Production, SizeDistKind::Lognormal,
                      SizeDistKind::Normal}) {
        const auto sizes = sampleSizes(kind, n);
        const double total =
            std::accumulate(sizes.begin(), sizes.end(), 0.0);
        const double top = std::accumulate(
            sizes.begin() + (3 * sizes.size()) / 4, sizes.end(), 0.0);
        table.addRow({sizeDistName(kind),
                      std::to_string(pct(sizes, 25)),
                      std::to_string(pct(sizes, 50)),
                      std::to_string(pct(sizes, 75)),
                      std::to_string(pct(sizes, 90)),
                      std::to_string(pct(sizes, 95)),
                      std::to_string(pct(sizes, 99)),
                      std::to_string(sizes.back()),
                      TextTable::num(total / n, 1),
                      TextTable::num(top / total * 100.0, 1) + "%"});
    }
    table.print(std::cout);

    printBanner(std::cout, "Tail CCDF: P(size >= x)");
    TextTable ccdf({"x", "production", "lognormal"});
    const auto prod = sampleSizes(SizeDistKind::Production, n);
    const auto logn = sampleSizes(SizeDistKind::Lognormal, n);
    for (uint32_t x : {100u, 200u, 300u, 400u, 500u, 700u, 900u, 1000u}) {
        auto ccdf_of = [&](const std::vector<uint32_t>& s) {
            const auto it = std::lower_bound(s.begin(), s.end(), x);
            return static_cast<double>(s.end() - it) / s.size();
        };
        ccdf.addRow({std::to_string(x),
                     TextTable::num(ccdf_of(prod) * 100.0, 2) + "%",
                     TextTable::num(ccdf_of(logn) * 100.0, 2) + "%"});
    }
    ccdf.print(std::cout);
    std::cout << "\nThe production tail carries far more mass than the\n"
                 "lognormal at equal body: the paper's heavy-tail claim.\n";
    return 0;
}
