/**
 * @file
 * Reproduces Figure 12: how the optimal request-vs-batch parallelism
 * point moves with (a) the SLA target and the query-size distribution
 * (including the penalty for tuning against the wrong distribution),
 * (b) the model architecture, and (c) the CPU platform (inclusive
 * Broadwell vs exclusive Skylake cache hierarchies).
 */

#include "bench/bench_common.hh"
#include "costmodel/cpu_cost.hh"

using namespace deeprecsys;
using namespace deeprecsys::bench;

int
main()
{
    // ---- (a) SLA targets and size distributions, DLRM-RMC1 ----
    printBanner(std::cout,
                "Figure 12(a): optimal batch vs SLA target and size "
                "distribution (DLRM-RMC1)");
    {
        TextTable table({"tier", "production: batch", "QPS",
                         "lognormal: batch", "QPS",
                         "mis-tuned penalty"});
        // One row per tier, tuned concurrently; rows land input-order.
        const auto rows = sweepMap(allTiers(), [&](SlaTier tier) {
            InfraConfig prod_cfg = defaultInfra(ModelId::DlrmRmc1);
            DeepRecInfra prod(prod_cfg);
            InfraConfig logn_cfg = prod_cfg;
            logn_cfg.sizeDist = SizeDistKind::Lognormal;
            DeepRecInfra logn(logn_cfg);

            const double sla = prod.slaMs(tier);
            const TuningResult rp = DeepRecSched::tuneCpu(prod, sla);
            const TuningResult rl = DeepRecSched::tuneCpu(logn, sla);

            // Apply the lognormal-tuned batch to production traffic:
            // the penalty the paper quantifies as 1.2-1.7x.
            SchedulerPolicy mistuned = rl.policy;
            const double mistuned_qps =
                prod.maxQps(mistuned, sla).maxQps;

            return std::vector<std::string>{
                slaTierName(tier),
                std::to_string(rp.policy.perRequestBatch),
                TextTable::num(rp.qps(), 0),
                std::to_string(rl.policy.perRequestBatch),
                TextTable::num(rl.qps(), 0),
                TextTable::num(rp.qps() / mistuned_qps, 2) + "x"};
        });
        for (const std::vector<std::string>& row : rows)
            table.addRow(row);
        table.print(std::cout);
    }

    // ---- (b) model architectures ----
    printBanner(std::cout,
                "Figure 12(b): optimal batch across models (high tier)");
    {
        TextTable table({"Model", "class", "optimal batch", "QPS"});
        const std::vector<std::pair<ModelId, const char*>> models = {
            {ModelId::DlrmRmc1, "embedding"},
            {ModelId::Din, "embedding+attention"},
            {ModelId::DlrmRmc3, "MLP"},
            {ModelId::WideAndDeep, "MLP"},
            {ModelId::Dien, "recurrent"},
        };
        const auto rows = sweepMap(
            models, [&](const std::pair<ModelId, const char*>& entry) {
                const auto& [id, klass] = entry;
                DeepRecInfra infra(defaultInfra(id));
                const TuningResult r = DeepRecSched::tuneCpu(
                    infra, infra.slaMs(SlaTier::High));
                return std::vector<std::string>{
                    modelName(id), klass,
                    std::to_string(r.policy.perRequestBatch),
                    TextTable::num(r.qps(), 0)};
            });
        for (const std::vector<std::string>& row : rows)
            table.addRow(row);
        table.print(std::cout);
    }

    // ---- (c) hardware platforms ----
    printBanner(std::cout,
                "Figure 12(c): DLRM-RMC3 at 175ms on Broadwell vs "
                "Skylake");
    {
        TextTable table({"Platform", "LLC", "optimal batch", "QPS",
                         "QPS@16 / QPS@opt",
                         "contention @16", "contention @1024"});
        const std::vector<CpuPlatform> platforms = {
            CpuPlatform::broadwell(), CpuPlatform::skylake()};
        const auto rows = sweepMap(platforms, [&](const CpuPlatform&
                                                      platform) {
            InfraConfig cfg = defaultInfra(ModelId::DlrmRmc3);
            cfg.platform = platform;
            DeepRecInfra infra(cfg);
            const TuningResult r = DeepRecSched::tuneCpu(infra, 175.0);

            SchedulerPolicy small = r.policy;
            small.perRequestBatch = 16;
            const double qps_small = infra.maxQps(small, 175.0).maxQps;

            const CpuCostModel& cost = infra.cpuModel();
            return std::vector<std::string>{
                platform.name,
                platform.inclusiveLlc ? "inclusive" : "exclusive",
                std::to_string(r.policy.perRequestBatch),
                TextTable::num(r.qps(), 0),
                TextTable::num(qps_small / r.qps(), 2),
                TextTable::num(cost.contentionFactor(platform.cores, 16),
                               2),
                TextTable::num(
                    cost.contentionFactor(platform.cores, 1024), 2)};
        });
        for (const std::vector<std::string>& row : rows)
            table.addRow(row);
        table.print(std::cout);
        std::cout << "\nInclusive caches (Broadwell) pay a steep"
                     " request-parallel penalty; batch parallelism"
                     " recovers it (paper: L2 miss 55% at batch 16 vs"
                     " 40% at 1024).\n";
    }
    return 0;
}
