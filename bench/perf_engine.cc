/**
 * @file
 * Self-measuring performance benchmark of the simulation runtime —
 * the simulator simulating how fast it simulates.
 *
 * Scenarios:
 *
 *  - `fig11_single_machine`: one ServingSimulator run over a long
 *    production trace (the fig11 operating point) — the engine
 *    hot-path metric: simulated events/second on one thread.
 *  - `cluster16_sharded`: a 16-machine sharded TwoStage cluster run
 *    with shard-aware routing — the cluster driver hot path.
 *  - `cluster16_obs_off` / `cluster16_obs_on`: the same workload with
 *    the observability layer explicitly detached and fully attached.
 *    The detached run gates the obs integration's disabled path (the
 *    null-observer pointer test plus the engine's first-service
 *    stamp) at <1% overhead (+5 ms timer-noise floor) against the
 *    baseline measured in the same process; both runs must reproduce
 *    the baseline's statistics exactly — observing a run must never
 *    change it.
 *  - `find_max_qps`, `cluster_max_qps`, `plan_capacity`,
 *    `grid_sweep`: the embarrassingly parallel search layers, each
 *    run at 1 thread and at N threads (in-process pool resize) with
 *    results checked bit-identical and the wall-clock speedup
 *    reported.
 *
 * Output: a table to stdout and a JSON report (default
 * BENCH_sim_perf.json) that CI archives. `--smoke` shrinks every
 * scenario for a seconds-long CI run; `--threads K` overrides the
 * parallel thread count (default: DRS_THREADS / hardware).
 *
 * Events metric: CPU request completions + query completions (+ parts
 * and joins for the cluster), i.e. heap pops — the unit of work of a
 * discrete-event simulator.
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "cluster/capacity_planner.hh"
#include "obs/observer.hh"
#include "cluster/cluster_qps_search.hh"
#include "cluster/cluster_sim.hh"
#include "loadgen/query_stream.hh"
#include "sim/qps_search.hh"

using namespace deeprecsys;
using namespace deeprecsys::bench;

namespace {

using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point start, Clock::time_point stop)
{
    return std::chrono::duration<double>(stop - start).count();
}

/** Best-of-N wall clock for a callable (N small: sims are seconds). */
template <typename Fn>
double
bestWall(size_t repeats, Fn&& fn)
{
    double best = -1.0;
    for (size_t r = 0; r < repeats; r++) {
        const auto start = Clock::now();
        fn();
        const double w = seconds(start, Clock::now());
        if (best < 0.0 || w < best)
            best = w;
    }
    return best;
}

struct ScenarioReport
{
    std::string name;
    double wallSerial = 0;     ///< seconds at 1 thread
    double wallParallel = 0;   ///< seconds at N threads (0: n/a)
    double events = 0;         ///< simulated events (serial run)
    double queries = 0;        ///< simulated queries (serial run)
    bool identical = true;     ///< parallel result bitwise == serial

    double
    speedup() const
    {
        return wallParallel > 0.0 ? wallSerial / wallParallel : 1.0;
    }
};

SimConfig
rmc1Machine(size_t batch = 256)
{
    const ModelProfile profile = ModelProfile::forModel(ModelId::DlrmRmc1);
    SchedulerPolicy policy;
    policy.perRequestBatch = batch;
    return SimConfig{CpuCostModel(profile, CpuPlatform::skylake()),
                     std::nullopt, policy, 0.05, 1.0};
}

ClusterConfig
shardedCluster16()
{
    const ModelProfile profile = ModelProfile::forModel(ModelId::DlrmRmc2);
    ClusterConfig cluster;
    for (size_t m = 0; m < 16; m++) {
        SchedulerPolicy policy;
        policy.perRequestBatch = 256;
        SimConfig machine{CpuCostModel(profile, CpuPlatform::skylake()),
                          std::nullopt, policy, 0.05, 1.0};
        machine.memoryBytes = 1'500'000'000ULL;
        cluster.machines.push_back(machine);
    }
    cluster.network.hopSeconds = 150e-6;
    cluster.network.gigabytesPerSecond = 12.5;
    const std::vector<EmbeddingTableInfo> tables =
        embeddingTables(modelConfig(ModelId::DlrmRmc2));
    PlacementSpec placement_spec;
    const ShardPlacement placement = ShardPlacement::build(
        tables, machineMemoryBudgets(cluster.machines), placement_spec);
    TableSetSpec table_set;
    table_set.numTables = static_cast<uint32_t>(tables.size());
    table_set.tablesPerQuery = 8;
    cluster.sharding = ShardingConfig{placement, table_set};
    return cluster;
}

/** The observability disabled-path overhead gate (see main). */
struct ObsGate
{
    double baselineWall = 0;
    double offWall = 0;
    double onWall = 0;
    bool pass = true;
};

void
writeJson(const std::string& path,
          const std::vector<ScenarioReport>& reports, size_t threads,
          double combined_speedup, const ObsGate& gate)
{
    std::ofstream out(path);
    if (!out.good()) {
        std::cerr << "cannot write " << path << "\n";
        return;
    }
    out.precision(6);
    out << "{\n  \"threads\": " << threads << ",\n"
        << "  \"combined_search_speedup\": " << combined_speedup
        << ",\n  \"obs_overhead_gate\": {"
        << "\"baseline_s\": " << gate.baselineWall << ", "
        << "\"obs_off_s\": " << gate.offWall << ", "
        << "\"obs_on_s\": " << gate.onWall << ", "
        << "\"off_overhead_frac\": "
        << (gate.baselineWall > 0.0
                ? gate.offWall / gate.baselineWall - 1.0
                : 0.0)
        << ", \"pass\": " << (gate.pass ? "true" : "false") << "}"
        << ",\n  \"scenarios\": {\n";
    for (size_t i = 0; i < reports.size(); i++) {
        const ScenarioReport& r = reports[i];
        out << "    \"" << r.name << "\": {"
            << "\"wall_serial_s\": " << r.wallSerial << ", "
            << "\"wall_parallel_s\": " << r.wallParallel << ", "
            << "\"speedup\": " << r.speedup() << ", "
            << "\"events\": " << r.events << ", "
            << "\"events_per_s\": "
            << (r.wallSerial > 0.0 ? r.events / r.wallSerial : 0.0)
            << ", "
            << "\"queries_per_s\": "
            << (r.wallSerial > 0.0 ? r.queries / r.wallSerial : 0.0)
            << ", "
            << "\"parallel_identical\": "
            << (r.identical ? "true" : "false") << "}"
            << (i + 1 < reports.size() ? "," : "") << "\n";
    }
    out << "  }\n}\n";
    std::cout << "wrote " << path << "\n";
}

} // namespace

int
main(int argc, char** argv)
{
    bool smoke = false;
    size_t threads = ThreadPool::defaultThreadCount();
    std::string out_path = "BENCH_sim_perf.json";
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--threads" && i + 1 < argc) {
            threads = static_cast<size_t>(std::stoul(argv[++i]));
        } else {
            out_path = arg;
        }
    }
    if (threads < 1)
        threads = 1;
    const size_t repeats = smoke ? 1 : 3;

    printBanner(std::cout,
                "perf_engine: simulation-runtime benchmark (" +
                    std::to_string(threads) + " threads" +
                    (smoke ? ", smoke" : "") + ")");
    std::vector<ScenarioReport> reports;

    // ---- engine hot path: fig11 single-machine run (serial only;
    // one simulation is a serial dependence chain by design).
    {
        ScenarioReport report;
        report.name = "fig11_single_machine";
        const SimConfig cfg = rmc1Machine();
        LoadSpec load;
        load.qps = 600.0;
        QueryStream stream(load);
        const QueryTrace trace =
            stream.generate(smoke ? 20000 : 120000);
        ServingSimulator sim(cfg);
        SimResult result;
        report.wallSerial =
            bestWall(repeats, [&] { result = sim.run(trace); });
        report.events = static_cast<double>(result.numRequests) +
            static_cast<double>(result.numQueries);
        report.queries = static_cast<double>(result.numQueries);
        reports.push_back(report);
    }

    // ---- cluster driver hot path: 16-machine sharded fan-out/join,
    // plus the observability overhead gate. All three runs share one
    // process, trace, and best-of-N so the comparison sees the same
    // cache and frequency state.
    bool obs_gate_pass = true;
    double obs_base_wall = 0.0;
    double obs_off_wall = 0.0;
    double obs_on_wall = 0.0;
    {
        const ClusterConfig cluster = shardedCluster16();
        LoadSpec load;
        load.qps = 4000.0;
        QueryStream stream(load);
        const QueryTrace trace =
            stream.generate(smoke ? 10000 : 60000);
        const RoutingSpec routing{RoutingKind::ShardAware};
        // Wall noise at 1 repeat is far above the 1% gate band; the
        // gated trio always takes best-of-3, smoke or not.
        const size_t gate_repeats = repeats < 3 ? 3 : repeats;

        auto cluster_events = [](const ClusterResult& r) {
            uint64_t requests = 0;
            uint64_t joins = 0;
            for (const MachineStats& m : r.perMachine) {
                requests += m.requestsDispatched;
                joins += m.joinPhases;
            }
            return static_cast<double>(requests + r.numParts + joins +
                                       r.numCompleted);
        };
        auto same_result = [](const ClusterResult& a,
                              const ClusterResult& b) {
            return a.numCompleted == b.numCompleted &&
                a.numParts == b.numParts && a.p99Ms() == b.p99Ms() &&
                a.meanFanout == b.meanFanout;
        };

        ClusterSimulator sim(cluster);
        ClusterResult base;
        {
            ScenarioReport report;
            report.name = "cluster16_sharded";
            report.wallSerial = bestWall(
                gate_repeats, [&] { base = sim.run(trace, routing); });
            report.events = cluster_events(base);
            report.queries = static_cast<double>(base.numCompleted);
            obs_base_wall = report.wallSerial;
            reports.push_back(report);
        }

        {
            ScenarioReport report;
            report.name = "cluster16_obs_off";
            sim.setObserver(nullptr);   // the default disabled path
            ClusterResult off;
            report.wallSerial = bestWall(
                gate_repeats, [&] { off = sim.run(trace, routing); });
            report.events = cluster_events(off);
            report.queries = static_cast<double>(off.numCompleted);
            report.identical = same_result(base, off);
            obs_off_wall = report.wallSerial;
            reports.push_back(report);
        }

        {
            ScenarioReport report;
            report.name = "cluster16_obs_on";
            ClusterResult on;
            report.wallSerial = bestWall(gate_repeats, [&] {
                // One observer per run: a fresh one each repeat.
                obs::RunObserver observer(obs::ObsConfig::full(0.001),
                                          cluster.machines.size());
                sim.setObserver(&observer);
                on = sim.run(trace, routing);
                sim.setObserver(nullptr);
            });
            report.events = cluster_events(on);
            report.queries = static_cast<double>(on.numCompleted);
            report.identical = same_result(base, on);
            obs_on_wall = report.wallSerial;
            reports.push_back(report);
        }

        obs_gate_pass = obs_off_wall <= obs_base_wall * 1.01 + 0.005;
        std::cout << "obs overhead vs cluster16_sharded: off "
                  << TextTable::num(
                         100.0 * (obs_off_wall / obs_base_wall - 1.0), 2)
                  << "% (gate <1% +5ms: "
                  << (obs_gate_pass ? "PASS" : "FAIL") << "), on "
                  << TextTable::num(
                         100.0 * (obs_on_wall / obs_base_wall - 1.0), 2)
                  << "%\n";
    }

    // ---- parallel layers: serial vs parallel wall, results must be
    // bit-identical (the determinism contract).
    auto timed_pair = [&](auto fn, auto& serial_out, auto& parallel_out,
                          ScenarioReport& report) {
        ThreadPool::setSharedThreads(1);
        report.wallSerial = bestWall(repeats, [&] { serial_out = fn(); });
        ThreadPool::setSharedThreads(threads);
        report.wallParallel =
            bestWall(repeats, [&] { parallel_out = fn(); });
        ThreadPool::setSharedThreads(1);
    };

    {
        ScenarioReport report;
        report.name = "find_max_qps";
        QpsSearchSpec spec;
        spec.slaMs = 100.0;
        spec.numQueries = smoke ? 1200 : 4000;
        QpsSearchResult serial, parallel;
        timed_pair([&] { return findMaxQps(rmc1Machine(), spec); },
                   serial, parallel, report);
        report.identical = serial.maxQps == parallel.maxQps &&
            serial.evaluations == parallel.evaluations &&
            serial.atMax.p99Ms() == parallel.atMax.p99Ms();
        report.queries = static_cast<double>(serial.evaluations) *
            static_cast<double>(spec.numQueries);
        report.events = report.queries +
            static_cast<double>(serial.evaluations) *
                static_cast<double>(serial.atMax.numRequests);
        reports.push_back(report);
        std::cout << "find_max_qps: maxQps=" << serial.maxQps
                  << " evaluations=" << serial.evaluations << "\n";
    }

    {
        ScenarioReport report;
        report.name = "cluster_max_qps";
        ClusterQpsSpec spec;
        spec.slaMs = 100.0;
        spec.numQueries = smoke ? 1600 : 4800;
        spec.routing.kind = RoutingKind::JoinShortestQueue;
        ClusterConfig cluster;
        for (size_t m = 0; m < 8; m++)
            cluster.machines.push_back(rmc1Machine());
        ClusterQpsResult serial, parallel;
        timed_pair([&] { return findClusterMaxQps(cluster, spec); },
                   serial, parallel, report);
        report.identical = serial.maxQps == parallel.maxQps &&
            serial.evaluations == parallel.evaluations &&
            serial.atMax.p99Ms() == parallel.atMax.p99Ms();
        report.queries = static_cast<double>(serial.evaluations) *
            static_cast<double>(spec.numQueries);
        reports.push_back(report);
        std::cout << "cluster_max_qps: maxQps=" << serial.maxQps
                  << " evaluations=" << serial.evaluations << "\n";
    }

    {
        ScenarioReport report;
        report.name = "plan_capacity";
        CapacityPlanSpec spec;
        spec.unitMachines = {rmc1Machine()};
        spec.targetQps = smoke ? 4000.0 : 8000.0;
        spec.slaMs = 100.0;
        spec.queriesPerMachine = smoke ? 200 : 300;
        spec.minQueries = smoke ? 1000 : 2000;
        spec.maxUnits = 64;
        CapacityPlan serial, parallel;
        timed_pair([&] { return planCapacity(spec); }, serial, parallel,
                   report);
        report.identical = serial.units == parallel.units &&
            serial.evaluations == parallel.evaluations &&
            serial.atPlan.p99Ms() == parallel.atPlan.p99Ms();
        reports.push_back(report);
        std::cout << "plan_capacity: units=" << serial.units
                  << " evaluations=" << serial.evaluations << "\n";
    }

    {
        ScenarioReport report;
        report.name = "grid_sweep";
        // A fig09-style batch grid: independent simulations, the
        // embarrassingly parallel bench shape.
        std::vector<size_t> batches;
        for (size_t b = 1; b <= 2048; b *= 2)
            batches.push_back(b);
        const size_t queries = smoke ? 1000 : 3000;
        auto sweep = [&] {
            return sweepMap(batches, [&](size_t batch) {
                LoadSpec load;
                return evaluateAtQps(rmc1Machine(batch), load, 600.0,
                                     queries)
                    .p95Ms();
            });
        };
        std::vector<double> serial, parallel;
        timed_pair(sweep, serial, parallel, report);
        report.identical = serial == parallel;
        report.queries =
            static_cast<double>(batches.size() * queries);
        reports.push_back(report);
    }

    // ---- report
    TextTable table({"scenario", "wall 1t (s)", "wall " +
                         std::to_string(threads) + "t (s)",
                     "speedup", "events/s (1t)", "queries/s (1t)",
                     "identical"});
    double search_serial = 0.0;
    double search_parallel = 0.0;
    bool all_identical = true;
    for (const ScenarioReport& r : reports) {
        table.addRow({r.name, TextTable::num(r.wallSerial, 4),
                      r.wallParallel > 0.0
                          ? TextTable::num(r.wallParallel, 4)
                          : "-",
                      r.wallParallel > 0.0
                          ? TextTable::num(r.speedup(), 2) + "x"
                          : "-",
                      r.events > 0.0 && r.wallSerial > 0.0
                          ? TextTable::num(r.events / r.wallSerial, 0)
                          : "-",
                      r.queries > 0.0 && r.wallSerial > 0.0
                          ? TextTable::num(r.queries / r.wallSerial, 0)
                          : "-",
                      r.identical ? "yes" : "NO"});
        if (r.wallParallel > 0.0) {
            search_serial += r.wallSerial;
            search_parallel += r.wallParallel;
        }
        all_identical = all_identical && r.identical;
    }
    table.print(std::cout);
    const double combined = search_parallel > 0.0
        ? search_serial / search_parallel
        : 1.0;
    std::cout << "\ncombined search/plan/sweep speedup at "
              << threads << " threads: "
              << TextTable::num(combined, 2) << "x"
              << (all_identical
                      ? " (parallel results bitwise-identical)"
                      : " (MISMATCH: parallel results diverged!)")
              << "\n";

    ObsGate gate;
    gate.baselineWall = obs_base_wall;
    gate.offWall = obs_off_wall;
    gate.onWall = obs_on_wall;
    gate.pass = obs_gate_pass;
    writeJson(out_path, reports, threads, combined, gate);
    if (!obs_gate_pass)
        std::cerr << "obs disabled-path overhead gate FAILED\n";
    return (all_identical && obs_gate_pass) ? 0 : 1;
}
