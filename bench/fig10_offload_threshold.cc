/**
 * @file
 * Reproduces Figure 10: achievable QPS versus the accelerator
 * query-size threshold. Threshold 1 offloads every query ("all GPU");
 * beyond the maximum query size nothing offloads ("all CPU"). The
 * optimum sits between and varies per model class.
 */

#include "bench/bench_common.hh"

using namespace deeprecsys;
using namespace deeprecsys::bench;

int
main()
{
    const std::vector<uint32_t> thresholds = {1,   64,  128, 192, 256,
                                              320, 384, 512, 768, 1001};
    for (ModelId id :
         {ModelId::DlrmRmc1, ModelId::DlrmRmc3, ModelId::Dien}) {
        DeepRecInfra infra(defaultInfra(id, /*gpu=*/true));
        const double sla = infra.slaMs(SlaTier::Medium);

        // The batch size for CPU-resident work comes from stage 1 of
        // DeepRecSched (Section IV-C).
        const TuningResult cpu = DeepRecSched::tuneCpu(infra, sla);

        // One independent max-QPS search per threshold, swept on the
        // shared pool; rows print in input order.
        const std::vector<QpsSearchResult> curve =
            sweepMap(thresholds, [&](uint32_t t) {
                SchedulerPolicy policy = cpu.policy;
                policy.gpuEnabled = true;
                policy.gpuQueryThreshold = t;
                return infra.maxQps(policy, sla);
            });

        TextTable table({"threshold", "QPS", "GPU work frac"});
        double best_qps = 0.0;
        uint32_t best_threshold = 1;
        for (size_t i = 0; i < thresholds.size(); i++) {
            const QpsSearchResult& r = curve[i];
            if (r.maxQps > best_qps * 1.02) {
                best_qps = r.maxQps;
                best_threshold = thresholds[i];
            }
            table.addRow({std::to_string(thresholds[i]),
                          TextTable::num(r.maxQps, 0),
                          TextTable::num(
                              r.atMax.gpuWorkFraction * 100.0, 1) + "%"});
        }
        printBanner(std::cout,
                    "Figure 10: " + modelName(id) + " (medium target)" +
                        " -> optimal threshold " +
                        std::to_string(best_threshold));
        table.print(std::cout);
    }
    return 0;
}
