/**
 * @file
 * Cluster capacity study: (a) cluster-level QPS-under-SLA as machines
 * are added — the scale-out curve a capacity plan walks; (b) the
 * machines a tier needs for a target global rate under different
 * machine mixes and scheduler policies — the provisioning question the
 * paper's introduction motivates (double per-machine QPS-under-SLA,
 * halve the tier).
 */

#include "bench/bench_common.hh"
#include "cluster/capacity_planner.hh"
#include "cluster/cluster_qps_search.hh"

using namespace deeprecsys;

namespace {

SimConfig
cpuMachine(size_t batch)
{
    const ModelProfile profile = ModelProfile::forModel(ModelId::DlrmRmc1);
    SchedulerPolicy policy;
    policy.perRequestBatch = batch;
    return SimConfig{CpuCostModel(profile, CpuPlatform::skylake()),
                     std::nullopt, policy, 0.05, 1.0};
}

SimConfig
gpuMachine(size_t batch, uint32_t threshold)
{
    const ModelProfile profile = ModelProfile::forModel(ModelId::DlrmRmc1);
    SchedulerPolicy policy;
    policy.perRequestBatch = batch;
    policy.gpuEnabled = true;
    policy.gpuQueryThreshold = threshold;
    return SimConfig{CpuCostModel(profile, CpuPlatform::skylake()),
                     GpuCostModel(profile, GpuPlatform::gtx1080Ti()),
                     policy, 0.05, 1.0};
}

} // namespace

int
main()
{
    const double sla_ms = 100.0;

    printBanner(std::cout, "Cluster QPS-under-SLA scale-out (p99 <= " +
                               TextTable::num(sla_ms, 0) + " ms)");
    TextTable scaling({"machines", "max global QPS", "QPS per machine",
                       "p99 at max (ms)", "evaluations"});
    double one_machine_qps = 0.0;
    for (size_t n : {1, 2, 4, 8, 16}) {
        ClusterConfig cluster;
        for (size_t m = 0; m < n; m++)
            cluster.machines.push_back(cpuMachine(256));
        ClusterQpsSpec spec;
        spec.slaMs = sla_ms;
        spec.routing.kind = RoutingKind::PowerOfTwoChoices;
        const ClusterQpsResult r = findClusterMaxQps(cluster, spec);
        if (n == 1)
            one_machine_qps = r.maxQps;
        scaling.addRow({std::to_string(n),
                        TextTable::num(r.maxQps, 0),
                        TextTable::num(r.maxQps / double(n), 0),
                        TextTable::num(r.atMax.tailMs(99), 1),
                        std::to_string(r.evaluations)});
    }
    scaling.print(std::cout);
    std::cout << "\nScale-out exceeds linear in machines: queue-aware"
                 " routing pools Poisson burstiness across the fleet"
                 " (statistical multiplexing), so per-machine"
                 " QPS-under-p99 rises above the single-machine "
              << TextTable::num(one_machine_qps, 0)
              << " as the tier grows - capacity questions must be asked"
                 " at the cluster, not the machine.\n\n";

    const double target_qps = 50000.0;
    printBanner(std::cout, "Capacity plan: machines for " +
                               TextTable::num(target_qps, 0) +
                               " global QPS (p99 <= " +
                               TextTable::num(sla_ms, 0) + " ms)");

    struct Mix
    {
        const char* name;
        std::vector<SimConfig> unit;
        RoutingSpec routing;
    };
    RoutingSpec po2c;
    po2c.kind = RoutingKind::PowerOfTwoChoices;
    RoutingSpec size_aware;
    size_aware.kind = RoutingKind::SizeAware;
    size_aware.sizeThreshold = 400;

    const std::vector<Mix> mixes = {
        {"static batch (25), CPU-only", {cpuMachine(25)}, po2c},
        {"tuned batch (256), CPU-only", {cpuMachine(256)}, po2c},
        {"3 CPU + 1 GPU, size-aware",
         {cpuMachine(256), cpuMachine(256), cpuMachine(256),
          gpuMachine(256, 400)},
         size_aware},
    };

    TextTable plans({"machine mix", "units", "machines",
                     "p99 at plan (ms)", "evaluations"});
    size_t worst_machines = 0;
    size_t best_machines = 0;
    for (const Mix& mix : mixes) {
        CapacityPlanSpec spec;
        spec.unitMachines = mix.unit;
        spec.targetQps = target_qps;
        spec.slaMs = sla_ms;
        spec.routing = mix.routing;
        const CapacityPlan plan = planCapacity(spec);
        plans.addRow({mix.name,
                      plan.feasible ? std::to_string(plan.units) : "-",
                      plan.feasible ? std::to_string(plan.machines)
                                    : "infeasible",
                      plan.feasible ? TextTable::num(plan.tailMs(99), 1)
                                    : "-",
                      std::to_string(plan.evaluations)});
        if (plan.feasible) {
            worst_machines = std::max(worst_machines, plan.machines);
            if (best_machines == 0)
                best_machines = plan.machines;
            best_machines = std::min(best_machines, plan.machines);
        }
    }
    plans.print(std::cout);
    if (worst_machines > 0 && best_machines > 0) {
        std::cout << "\nTuning the per-machine scheduler and steering"
                     " the heavy tail to accelerators shrinks the tier"
                     " from "
                  << worst_machines << " to " << best_machines
                  << " machines ("
                  << TextTable::num(
                         100.0 * (1.0 - double(best_machines) /
                                            double(worst_machines)),
                         1)
                  << "% fewer) - the datacenter capacity saving the"
                     " paper motivates, now measured at the cluster"
                     " tier.\n";
    }
    return 0;
}
