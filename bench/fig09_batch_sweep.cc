/**
 * @file
 * Reproduces Figure 9: achievable QPS versus per-request batch size.
 * Top: DLRM-RMC3 at two latency targets (optimum moves to a larger
 * batch as the target relaxes). Bottom: the optimal batch differs
 * across DLRM-RMC1 (embedding), DLRM-RMC3 (MLP), and DIEN (attention)
 * model classes.
 */

#include "bench/bench_common.hh"

using namespace deeprecsys;
using namespace deeprecsys::bench;

namespace {

void
sweep(const DeepRecInfra& infra, double sla_ms, const std::string& label)
{
    TextTable table({"batch", "QPS under p95<=" +
                     TextTable::num(sla_ms, 0) + "ms"});
    std::vector<size_t> batches;
    for (size_t batch = 1; batch <= 1024; batch *= 2)
        batches.push_back(batch);

    // Every grid point is an independent max-QPS search; the sweep
    // helper evaluates them concurrently and returns input order.
    const std::vector<double> qps_curve =
        sweepMap(batches, [&](size_t batch) {
            SchedulerPolicy policy;
            policy.perRequestBatch = batch;
            return infra.maxQps(policy, sla_ms).maxQps;
        });

    double best_qps = 0.0;
    size_t best_batch = 1;
    for (size_t i = 0; i < batches.size(); i++) {
        if (qps_curve[i] > best_qps * 1.02) {
            best_qps = qps_curve[i];
            best_batch = batches[i];
        }
        table.addRow({std::to_string(batches[i]),
                      TextTable::num(qps_curve[i], 0)});
    }
    printBanner(std::cout, label + " -> optimal batch " +
                               std::to_string(best_batch));
    table.print(std::cout);
}

} // namespace

int
main()
{
    // Top: DLRM-RMC3 at low (50ms) and medium (100ms) targets.
    {
        DeepRecInfra infra(defaultInfra(ModelId::DlrmRmc3));
        sweep(infra, infra.slaMs(SlaTier::Low),
              "Figure 9 (top): DLRM-RMC3, low latency target");
        sweep(infra, infra.slaMs(SlaTier::Medium),
              "Figure 9 (top): DLRM-RMC3, medium latency target");
    }

    // Bottom: model classes at their medium targets.
    for (ModelId id :
         {ModelId::DlrmRmc1, ModelId::DlrmRmc3, ModelId::Dien}) {
        DeepRecInfra infra(defaultInfra(id));
        sweep(infra, infra.slaMs(SlaTier::Medium),
              "Figure 9 (bottom): " + modelName(id) +
                  ", medium latency target");
    }
    return 0;
}
