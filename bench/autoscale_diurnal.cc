/**
 * @file
 * Online autoscaling over a diurnal day: machine-hours saved vs the
 * static peak plan, per scaling policy and peak-to-trough ratio.
 *
 * The capacity planner sizes a static tier for the peak rate; this
 * study asks what that sizing costs across a whole day. One
 * DiurnalProfile-modulated arrival stream (the same drawn query
 * population re-timed, TraceTemplate::materializeDiurnal) is served
 * by the elastic cluster tier under each scaling policy: the static
 * baseline (the plan, never resized), the reactive threshold policy
 * (feedback on measured utilization and windowed tail latency), and
 * the predictive profile-aware policy (feed-forward from the known
 * traffic schedule). Reported per cell: machine-hours burned vs the
 * static plan, minutes of control windows violating the SLA, and the
 * whole-day fleet tail — the add/remove-machines-online experiment
 * the ROADMAP's elastic-serving item calls for.
 *
 * The day is compressed (minutes of simulated wall time, the profile
 * period scaled to match) so the study runs in seconds; machine-hour
 * *fractions* are invariant to the compression. The static plan is
 * sized on **steady-state-length** evaluation traces
 * (queriesPerMachine raised well above the planner default): near
 * the SLA knee this tier's queueing takes seconds of sustained
 * traffic to reach equilibrium, and a short-trace plan looks
 * feasible while melting down over a real day. In steady state,
 * per-machine QPS-under-SLA is service-bound and nearly flat in the
 * tier size, so capacity scales ~linearly in machines and tracking
 * the diurnal swing can bank most of the provisioning gap.
 *
 * Usage: autoscale_diurnal [--smoke] [--trace F] [--metrics F]
 *                          [out.json]
 * --smoke shrinks the day and sweeps only the 2x ratio (CI); the
 * optional path also writes the table as a JSON array (CI archives it
 * as BENCH_autoscale.json). --trace / --metrics additionally run a
 * small sharded reactive day with a RunObserver attached (serially,
 * after the sweep) and write its Chrome trace-event JSON / windowed
 * metrics JSON, plus the latency-attribution stage split to stdout —
 * the sharded tier's fan-out populates the network and join-wait
 * spans and stages the unsharded study cells cannot show. Output —
 * files included — is deterministic and bitwise identical at every
 * DRS_THREADS value.
 */

#include <cstring>
#include <fstream>
#include <string>

#include "bench/bench_common.hh"
#include "cluster/autoscaler.hh"
#include "cluster/capacity_planner.hh"

using namespace deeprecsys;

namespace {

SimConfig
cpuMachine(size_t batch)
{
    const ModelProfile profile = ModelProfile::forModel(ModelId::DlrmRmc1);
    SchedulerPolicy policy;
    policy.perRequestBatch = batch;
    return SimConfig{CpuCostModel(profile, CpuPlatform::skylake()),
                     std::nullopt, policy, 0.05, 1.0};
}

} // namespace

int
main(int argc, char** argv)
{
    bool smoke = false;
    std::string json_path;
    std::string trace_path;
    std::string metrics_path;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc)
            trace_path = argv[++i];
        else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc)
            metrics_path = argv[++i];
        else
            json_path = argv[i];
    }

    const double sla_ms = 100.0;
    const double peak_qps = 40000.0;
    const double day_seconds = smoke ? 90.0 : 180.0;
    const std::vector<double> ratios =
        smoke ? std::vector<double>{2.0}
              : std::vector<double>{1.5, 2.0, 3.0};

    printBanner(std::cout,
                "Autoscaling over a diurnal day (DLRM-RMC1, p99 <= " +
                    TextTable::num(sla_ms, 0) + " ms, peak " +
                    TextTable::num(peak_qps, 0) + " QPS)");

    // Static plan at the peak rate: the machine-hours baseline.
    CapacityPlanSpec plan_spec;
    plan_spec.unitMachines = {cpuMachine(256)};
    plan_spec.targetQps = peak_qps;
    plan_spec.slaMs = sla_ms;
    plan_spec.routing.kind = RoutingKind::PowerOfTwoChoices;
    // Steady-state evaluation traces (~10 s of traffic at the plan
    // point) — see the header comment.
    plan_spec.queriesPerMachine = 20000;
    const CapacityPlan plan = planCapacity(plan_spec);
    drs_assert(plan.feasible, "static peak plan infeasible");
    std::cout << "static peak plan: " << plan.machines
              << " machines (p99 " << TextTable::num(plan.tailMs(99), 1)
              << " ms at " << TextTable::num(peak_qps, 0)
              << " QPS); day compressed to "
              << TextTable::num(day_seconds, 0)
              << " s; static machine-hours over it: "
              << TextTable::num(plan.machineHoursOver(day_seconds), 3)
              << "\n\n";

    // The (ratio x policy) grid; each cell re-times one drawn
    // population per ratio and runs the elastic tier end-to-end.
    struct Cell
    {
        double ratio;
        ScalingPolicyKind policy;
    };
    std::vector<Cell> grid;
    for (double ratio : ratios) {
        for (ScalingPolicyKind policy : allScalingPolicyKinds())
            grid.push_back({ratio, policy});
    }

    const auto rows = bench::sweepMap(grid, [&](const Cell& cell) {
        const DiurnalProfile profile(cell.ratio, day_seconds);
        const double mean_qps =
            peak_qps / (1.0 + profile.swingAmplitude());

        LoadSpec load;
        load.qps = mean_qps;
        TraceTemplate tmpl(load);
        const size_t count =
            static_cast<size_t>(mean_qps * day_seconds);
        tmpl.ensure(count);
        const QueryTrace trace =
            tmpl.materializeDiurnal(mean_qps, profile, count);

        AutoscaleSpec spec;
        for (size_t m = 0; m < plan.machines; m++)
            spec.cluster.machines.push_back(cpuMachine(256));
        spec.routing.kind = RoutingKind::PowerOfTwoChoices;
        spec.slaMs = sla_ms;
        // The control cadence is absolute, not day-relative: near
        // the SLA knee a queue grows at a physical rate (tens of ms
        // of p99 per second), so the window must stay short enough
        // for the latency guard to catch a bad shed inside the
        // 80..100 ms band before it crosses the SLA.
        spec.controlIntervalSeconds = 0.75;
        spec.warmupDelaySeconds = 0.5;
        spec.profile = profile;
        spec.meanQps = mean_qps;
        spec.machinesAtPeak = plan.machines;

        ScalingPolicySpec policy;
        policy.kind = cell.policy;
        policy.minMachines = 2;
        policy.downUtilization = 0.55;
        policy.upUtilization = 0.72;
        policy.downLatencyFraction = 0.35;

        const Autoscaler scaler(spec);
        const AutoscaleResult r = scaler.run(trace, policy);
        // Fault-free elastic runs conserve exactly: the three-way
        // algebra (offered == completed + droppedFinal + lost) with
        // zero drop and fault books collapses to this.
        assertFaultConservation(r.overload, r.faults, r.numDispatched,
                                r.numCompleted, trace.size());
        drs_assert(r.numDispatched == r.numCompleted &&
                       r.numDispatched == trace.size(),
                   "elastic run lost queries");

        return std::vector<std::string>{
            TextTable::num(cell.ratio, 1),
            scalingPolicyName(cell.policy),
            TextTable::num(static_cast<int64_t>(plan.machines)),
            TextTable::num(
                static_cast<int64_t>(r.minServingMachines)) +
                ".." +
                TextTable::num(
                    static_cast<int64_t>(r.maxServingMachines)),
            TextTable::num(r.machineHours(), 3),
            TextTable::num(r.staticMachineHours(), 3),
            TextTable::num(100.0 * r.machineHoursSavedFraction(), 1),
            TextTable::num(r.slaViolationMinutes(), 2),
            TextTable::num(r.p99Ms(), 1),
            TextTable::num(static_cast<int64_t>(r.scaleEvents.size())),
        };
    });

    TextTable table({"peak/trough", "policy", "plan machines", "serving",
                     "machine-hours", "static mh", "saved %",
                     "SLA viol (min)", "day p99 (ms)", "scale events"});
    for (const std::vector<std::string>& row : rows)
        table.addRow(row);
    table.print(std::cout);

    std::cout
        << "\nAt the deepest swing the reactive policy may graze the"
           " SLA for a window or two around the trough: the tier's"
           " queueing knee is invisible to utilization and tail"
           " measurements until one machine too few, which is exactly"
           " where feed-forward knowledge of the schedule starts to"
           " pay - the predictive rows hold zero violations at every"
           " ratio.\n"
           "\nThe static row burns the plan's machine-hours regardless"
           " of the swing - that is the baseline. The reactive policy"
           " only sees measured utilization and windowed tail latency,"
           " yet tracks the swing and banks the trough; the predictive"
           " policy additionally knows the traffic schedule, so it"
           " pre-warms capacity ahead of the ramp instead of chasing"
           " it. Savings grow with the peak-to-trough ratio: the"
           " deeper the trough, the more of the day the static plan"
           " spends idle. SLA-violation minutes count control windows"
           " whose tail exceeded the SLA - the elastic policies must"
           " hold them at zero while shedding machines, or the saving"
           " is not real.\n";

    if (!trace_path.empty() || !metrics_path.empty()) {
        // Dedicated instrumented run: a small *sharded* reactive day
        // (DLRM-RMC2, shard-aware fan-out) rather than a replay of a
        // sweep cell — fan-out is what gives the trace its network
        // and join-wait spans and the stage split all four buckets;
        // the unsharded study cells would show queue/service only.
        // Runs serially after the sweep (the sweep's cells execute on
        // the shared pool), so the emitted bytes are identical at
        // every DRS_THREADS value.
        const ModelProfile profile =
            ModelProfile::forModel(ModelId::DlrmRmc2);
        AutoscaleSpec spec;
        for (size_t m = 0; m < 8; m++) {
            SchedulerPolicy sched;
            sched.perRequestBatch = 256;
            SimConfig machine{
                CpuCostModel(profile, CpuPlatform::skylake()),
                std::nullopt, sched, 0.05, 1.0};
            machine.memoryBytes = 1'500'000'000ULL;
            spec.cluster.machines.push_back(machine);
        }
        spec.cluster.network.hopSeconds = 150e-6;
        spec.cluster.network.gigabytesPerSecond = 12.5;
        const std::vector<EmbeddingTableInfo> tables =
            embeddingTables(modelConfig(ModelId::DlrmRmc2));
        const ShardPlacement placement = ShardPlacement::build(
            tables, machineMemoryBudgets(spec.cluster.machines),
            PlacementSpec{});
        TableSetSpec table_set;
        table_set.numTables = static_cast<uint32_t>(tables.size());
        table_set.tablesPerQuery = 8;
        spec.cluster.sharding = ShardingConfig{placement, table_set};
        spec.routing.kind = RoutingKind::ShardAware;
        spec.slaMs = sla_ms;
        spec.controlIntervalSeconds = 0.75;
        spec.warmupDelaySeconds = 0.5;

        const double obs_peak_qps = 2600.0;
        const DiurnalProfile obs_profile(2.0, day_seconds);
        const double obs_mean_qps =
            obs_peak_qps / (1.0 + obs_profile.swingAmplitude());
        spec.profile = obs_profile;
        spec.meanQps = obs_mean_qps;
        spec.machinesAtPeak = spec.cluster.machines.size();

        LoadSpec obs_load;
        obs_load.qps = obs_mean_qps;
        TraceTemplate obs_tmpl(obs_load);
        const size_t obs_count =
            static_cast<size_t>(obs_mean_qps * day_seconds);
        obs_tmpl.ensure(obs_count);
        const QueryTrace obs_trace = obs_tmpl.materializeDiurnal(
            obs_mean_qps, obs_profile, obs_count);

        ScalingPolicySpec obs_policy;
        obs_policy.kind = ScalingPolicyKind::Reactive;
        obs_policy.minMachines = 2;

        const obs::ObsConfig obs_cfg = obs::ObsConfig::full(0.005);
        obs::RunObserver observer(obs_cfg,
                                  spec.cluster.machines.size());
        Autoscaler scaler(spec);
        scaler.setObserver(&observer);
        const AutoscaleResult obs_r = scaler.run(obs_trace, obs_policy);
        assertFaultConservation(obs_r.overload, obs_r.faults,
                                obs_r.numDispatched, obs_r.numCompleted,
                                obs_trace.size());
        drs_assert(obs_r.numDispatched == obs_r.numCompleted &&
                       obs_r.numDispatched == obs_trace.size(),
                   "observed elastic run lost queries");

        std::cout << "\nobserved sharded day: 8-machine RMC2 tier,"
                     " reactive at 2.0x peak/trough, peak "
                  << TextTable::num(obs_peak_qps, 0)
                  << " QPS, span sample rate "
                  << TextTable::num(obs_cfg.spanSampleRate, 3) << " ("
                  << TextTable::num(static_cast<int64_t>(
                         observer.numTraceEvents()))
                  << " trace events, "
                  << TextTable::num(static_cast<int64_t>(
                         observer.metrics().numSnapshots()))
                  << " metric snapshots)\n";
        bench::printStageSplit(std::cout, observer.stageSplit());

        if (!trace_path.empty() && observer.writeTraceFile(trace_path))
            std::cout << "wrote " << trace_path << "\n";
        if (!metrics_path.empty() &&
            observer.writeMetricsFile(metrics_path))
            std::cout << "wrote " << metrics_path << "\n";
    }

    if (!json_path.empty()) {
        std::ofstream json(json_path);
        table.printJson(json);
        std::cout << "wrote " << json_path << "\n";
    }
    return 0;
}
