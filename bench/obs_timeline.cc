/**
 * @file
 * Observability timeline study: one reactive elastic-tier day with
 * the full RunObserver attached, printed as the operator would see it.
 *
 * Where autoscale_diurnal sweeps (ratio x policy) cells and reports
 * one summary row per cell, this binary runs a single small reactive
 * day and surfaces what the in-run observability layer records along
 * the way: the control-window timeline (machines, utilization,
 * windowed tail, arrival rate), the metric snapshot axis (asserted to
 * align one-to-one with the control ticks), and the latency
 * attribution stage split — the paper's Figure-6-style
 * where-did-the-time-go decomposition, here measured on the elastic
 * tier instead of a single machine.
 *
 * The tier is deliberately small (a handful of machines at a rate one
 * machine serves comfortably at trough) so the run takes seconds and
 * the timeline table stays readable.
 *
 * Usage: obs_timeline [--smoke] [--trace F] [--metrics F] [out.json]
 * --trace / --metrics write the run's Chrome trace-event JSON and
 * windowed metrics JSON; the optional positional path writes the
 * timeline table as a JSON array. Output — files included — is
 * deterministic and bitwise identical at every DRS_THREADS value (a
 * single run is single-threaded by design).
 */

#include <cstring>
#include <fstream>
#include <string>

#include "bench/bench_common.hh"
#include "cluster/autoscaler.hh"

using namespace deeprecsys;

namespace {

SimConfig
cpuMachine(size_t batch)
{
    const ModelProfile profile = ModelProfile::forModel(ModelId::DlrmRmc1);
    SchedulerPolicy policy;
    policy.perRequestBatch = batch;
    return SimConfig{CpuCostModel(profile, CpuPlatform::skylake()),
                     std::nullopt, policy, 0.05, 1.0};
}

} // namespace

int
main(int argc, char** argv)
{
    bool smoke = false;
    std::string json_path;
    std::string trace_path;
    std::string metrics_path;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc)
            trace_path = argv[++i];
        else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc)
            metrics_path = argv[++i];
        else
            json_path = argv[i];
    }

    const double sla_ms = 100.0;
    const double peak_qps = 8000.0;
    const size_t machines = 4;
    const double day_seconds = smoke ? 12.0 : 45.0;
    const double ratio = 2.0;

    printBanner(std::cout,
                "Observability timeline: one reactive elastic day (" +
                    TextTable::num(static_cast<int64_t>(machines)) +
                    " machines, peak " + TextTable::num(peak_qps, 0) +
                    " QPS, p99 <= " + TextTable::num(sla_ms, 0) +
                    " ms)");

    const DiurnalProfile profile(ratio, day_seconds);
    const double mean_qps = peak_qps / (1.0 + profile.swingAmplitude());

    LoadSpec load;
    load.qps = mean_qps;
    TraceTemplate tmpl(load);
    const size_t count = static_cast<size_t>(mean_qps * day_seconds);
    tmpl.ensure(count);
    const QueryTrace trace =
        tmpl.materializeDiurnal(mean_qps, profile, count);

    AutoscaleSpec spec;
    for (size_t m = 0; m < machines; m++)
        spec.cluster.machines.push_back(cpuMachine(256));
    spec.routing.kind = RoutingKind::PowerOfTwoChoices;
    spec.slaMs = sla_ms;
    spec.controlIntervalSeconds = 0.75;
    spec.warmupDelaySeconds = 0.5;
    spec.profile = profile;
    spec.meanQps = mean_qps;
    spec.machinesAtPeak = machines;

    ScalingPolicySpec policy;
    policy.kind = ScalingPolicyKind::Reactive;
    policy.minMachines = 1;

    const obs::ObsConfig obs_cfg = obs::ObsConfig::full(0.02);
    obs::RunObserver observer(obs_cfg, machines);

    Autoscaler scaler(spec);
    scaler.setObserver(&observer);
    const AutoscaleResult r = scaler.run(trace, policy);
    assertFaultConservation(r.overload, r.faults, r.numDispatched,
                            r.numCompleted, trace.size());
    drs_assert(r.numDispatched == r.numCompleted &&
                   r.numDispatched == trace.size(),
               "elastic run lost queries");

    // The snapshot axis IS the control-tick axis: the driver
    // snapshots the registry exactly once per tick, after pushing the
    // timeline row.
    const std::vector<double>& snaps =
        observer.metrics().snapshotTimes();
    drs_assert(snaps.size() == r.timeline.size(),
               "metric snapshots out of step with control ticks");
    for (size_t w = 0; w < snaps.size(); w++)
        drs_assert(snaps[w] == r.timeline[w].endSeconds,
                   "snapshot time diverged from its control tick");

    TextTable table({"window end (s)", "serving", "powered", "util %",
                     "window p99 (ms)", "arrival QPS", "SLA"});
    for (const AutoscaleWindow& w : r.timeline) {
        table.addRow({
            TextTable::num(w.endSeconds, 2),
            TextTable::num(static_cast<int64_t>(w.servingMachines)),
            TextTable::num(static_cast<int64_t>(w.poweredMachines)),
            TextTable::num(100.0 * w.utilization, 1),
            w.tailMs >= 0.0 ? TextTable::num(w.tailMs, 1) : "-",
            TextTable::num(w.arrivalQps, 0),
            w.slaViolation ? "VIOLATED" : "ok",
        });
    }
    table.print(std::cout);

    std::cout << "\nday p99 " << TextTable::num(r.p99Ms(), 1)
              << " ms over "
              << TextTable::num(static_cast<int64_t>(r.numCompleted))
              << " queries; "
              << TextTable::num(static_cast<int64_t>(snaps.size()))
              << " metric snapshots on the control ticks; "
              << TextTable::num(
                     static_cast<int64_t>(r.scaleEvents.size()))
              << " scale events; span sample rate "
              << TextTable::num(obs_cfg.spanSampleRate, 2) << " -> "
              << TextTable::num(
                     static_cast<int64_t>(observer.numTraceEvents()))
              << " trace events\n\n";

    bench::printStageSplit(std::cout, observer.stageSplit());

    std::cout
        << "\nReading the split: on a non-sharded tier a query is one"
           " whole part, so join wait is zero and network is exactly"
           " the forward plus return router hop. Queue versus service"
           " tracks the windows above - when the reactive policy runs"
           " the tier hot near a shed, the queue share grows first;"
           " that is the same signal the windowed p99 column shows,"
           " attributed per query instead of per window.\n";

    if (!trace_path.empty() && observer.writeTraceFile(trace_path))
        std::cout << "wrote " << trace_path << "\n";
    if (!metrics_path.empty() && observer.writeMetricsFile(metrics_path))
        std::cout << "wrote " << metrics_path << "\n";
    if (!json_path.empty()) {
        std::ofstream json(json_path);
        table.printJson(json);
        std::cout << "wrote " << json_path << "\n";
    }
    return 0;
}
