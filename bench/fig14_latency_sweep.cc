/**
 * @file
 * Reproduces Figure 14 for DLRM-RMC1: (a) throughput versus the
 * tail-latency target with and without the accelerator — the GPU
 * unlocks targets the CPU cannot reach and its share of work falls as
 * the target relaxes; (b) QPS/Watt — the GPU wins at strict targets,
 * the CPU at relaxed ones.
 */

#include "bench/bench_common.hh"

using namespace deeprecsys;
using namespace deeprecsys::bench;

int
main()
{
    DeepRecInfra cpu_infra(defaultInfra(ModelId::DlrmRmc1));
    DeepRecInfra gpu_infra(defaultInfra(ModelId::DlrmRmc1, /*gpu=*/true));

    printBanner(std::cout,
                "Figure 14: DLRM-RMC1 across tail latency targets");
    TextTable table({"target (ms)", "CPU QPS", "CPU batch",
                     "CPU+GPU QPS", "threshold", "GPU work",
                     "CPU QPS/W", "CPU+GPU QPS/W", "QPS/W winner"});

    for (double sla :
         {3.0, 5.0, 8.0, 12.0, 20.0, 40.0, 60.0, 100.0, 150.0}) {
        const TuningResult c = DeepRecSched::tuneCpu(cpu_infra, sla);
        const TuningResult g = DeepRecSched::tuneGpu(gpu_infra, sla);
        const double cpw = cpu_infra.qpsPerWatt(c.atBest);
        const double gpw = gpu_infra.qpsPerWatt(g.atBest);

        table.addRow({TextTable::num(sla, 0),
                      TextTable::num(c.qps(), 0),
                      c.qps() > 0
                          ? std::to_string(c.policy.perRequestBatch)
                          : "-",
                      TextTable::num(g.qps(), 0),
                      g.policy.gpuEnabled
                          ? std::to_string(g.policy.gpuQueryThreshold)
                          : "cpu-only",
                      TextTable::num(
                          g.atBest.atMax.gpuWorkFraction * 100.0, 1) +
                          "%",
                      TextTable::num(cpw, 2), TextTable::num(gpw, 2),
                      gpw > cpw ? "GPU" : "CPU"});
    }
    table.print(std::cout);
    std::cout << "\nPaper: GPUs unlock sub-CPU-floor latency targets"
                 " (57ms -> 41ms on their testbed); the GPU work share"
                 " falls as the target relaxes; QPS/W flips from GPU to"
                 " CPU at relaxed targets.\n";
    return 0;
}
