/**
 * @file
 * Reproduces Figure 13: deploying the tuned batch size on a fleet of
 * machines serving diurnal traffic for a simulated day reduces p95 and
 * p99 tail latency versus the fixed production batch size (paper:
 * 1.39x and 1.31x respectively).
 */

#include "bench/bench_common.hh"
#include "cluster/fleet.hh"

using namespace deeprecsys;
using namespace deeprecsys::bench;

namespace {

FleetResult
runFleet(ModelId model, size_t batch, double per_machine_qps)
{
    const ModelProfile profile = ModelProfile::forModel(model);
    SchedulerPolicy policy;
    policy.perRequestBatch = batch;
    SimConfig machine{CpuCostModel(profile, CpuPlatform::skylake()),
                      std::nullopt, policy, 0.05, 1.0};

    FleetConfig cfg;
    cfg.numMachines = 100;
    cfg.perMachineQps = per_machine_qps;
    cfg.queriesPerWindow = 600;
    cfg.numWindows = 12;            // a compressed diurnal day
    cfg.diurnalPeakToTrough = 2.0;
    cfg.seed = 20200530;
    return FleetSimulator(machine, cfg).run();
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Figure 13: production-fleet tail latency, fixed vs "
                "tuned batch over a diurnal day");
    TextTable table({"Model", "load/machine", "fixed batch", "tuned batch",
                     "p95 fixed (ms)", "p95 tuned (ms)", "p95 reduction",
                     "p99 fixed (ms)", "p99 tuned (ms)",
                     "p99 reduction"});

    struct Case
    {
        ModelId model;
        double qps;
    };
    // Load points chosen so the fixed configuration runs hot (but
    // stable) at the diurnal peak while the tuned one has headroom.
    const std::vector<Case> cases = {
        {ModelId::DlrmRmc1, 560.0},
        {ModelId::DlrmRmc3, 600.0},
        {ModelId::WideAndDeep, 780.0},
    };

    std::vector<double> p95_ratios, p99_ratios;
    for (const Case& c : cases) {
        // Tuned batch from DeepRecSched at the medium tier.
        DeepRecInfra infra(defaultInfra(c.model));
        const TuningResult tuned_cfg =
            DeepRecSched::tuneCpu(infra, infra.slaMs(SlaTier::Medium));
        const size_t fixed_batch = DeepRecSched::staticBaselineBatch(
            1000, CpuPlatform::skylake().cores);

        const FleetResult fixed = runFleet(c.model, fixed_batch, c.qps);
        const FleetResult tuned =
            runFleet(c.model, tuned_cfg.policy.perRequestBatch, c.qps);

        const double p95_ratio =
            fixed.tailMs(95.0) / tuned.tailMs(95.0);
        const double p99_ratio =
            fixed.tailMs(99.0) / tuned.tailMs(99.0);
        p95_ratios.push_back(p95_ratio);
        p99_ratios.push_back(p99_ratio);

        table.addRow({modelName(c.model), TextTable::num(c.qps, 0),
                      std::to_string(fixed_batch),
                      std::to_string(tuned_cfg.policy.perRequestBatch),
                      TextTable::num(fixed.tailMs(95.0), 1),
                      TextTable::num(tuned.tailMs(95.0), 1),
                      TextTable::num(p95_ratio, 2) + "x",
                      TextTable::num(fixed.tailMs(99.0), 1),
                      TextTable::num(tuned.tailMs(99.0), 1),
                      TextTable::num(p99_ratio, 2) + "x"});
    }
    table.print(std::cout);
    std::cout << "\nGeomean reduction: p95 "
              << TextTable::num(geomean(p95_ratios), 2) << "x, p99 "
              << TextTable::num(geomean(p99_ratios), 2)
              << "x (paper: 1.39x / 1.31x).\n";
    return 0;
}
