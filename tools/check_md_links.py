#!/usr/bin/env python3
"""Fail CI on broken relative links in the repo's Markdown files.

Scans every ``*.md`` file (skipping build trees and dot-directories)
for inline Markdown links and image references, resolves relative
targets against the containing file, and exits non-zero listing every
target that does not exist. External links (http/https/mailto) and
pure in-page anchors (#...) are not checked; a ``path#anchor`` target
is checked for the path only. Stdlib only.
"""

import os
import re
import sys

SKIP_DIRS = {"build", ".git", ".claude"}

# Inline links/images: [text](target) — target may carry a #fragment.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")


def md_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames
            if d not in SKIP_DIRS and not d.startswith(".")
        ]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check_file(path, root):
    broken = []
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    # Fenced code blocks routinely contain example links; drop them.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue
        resolved = os.path.normpath(
            os.path.join(os.path.dirname(path), target))
        if not os.path.exists(resolved):
            broken.append((os.path.relpath(path, root), target))
    return broken


def main():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    broken = []
    checked = 0
    for path in md_files(root):
        checked += 1
        broken.extend(check_file(path, root))
    if broken:
        print(f"{len(broken)} broken relative link(s):")
        for source, target in broken:
            print(f"  {source}: {target}")
        return 1
    print(f"OK: no broken relative links in {checked} Markdown files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
