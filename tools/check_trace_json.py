#!/usr/bin/env python3
"""Fail CI when an emitted observability JSON file is malformed.

Validates a Chrome trace-event JSON file written by the obs layer
(``src/obs/trace_json.cc``): the top-level shape Perfetto and
chrome://tracing load, the per-event required keys per phase, and the
invariants the RunObserver guarantees (non-negative complete-span
durations, the expected span names, metadata-first ordering). With
``--metrics FILE`` it additionally validates a windowed-metrics JSON
file (``src/obs/metrics.cc``): a sorted snapshot axis and one point
per metric per snapshot. Stdlib only.

Usage: check_trace_json.py TRACE.json [--metrics METRICS.json]
       [--require-spans name,name,...]
       [--require-instants name,name,...]
"""

import argparse
import json
import sys

# Spans the RunObserver can emit; anything else is a schema break.
KNOWN_SPAN_NAMES = {
    "query", "queue", "service", "gpu_service",
    "net_fwd", "net_ret", "join_wait",
}
KNOWN_INSTANT_NAMES = {
    "scale_up", "scale_down",
    # Overload control (cluster/admission.hh).
    "drop", "retry", "degrade",
    # Fault injection and recovery (cluster/fault_plan.hh).
    "machine_down", "machine_up", "hedge", "failover", "lost",
}


def fail(errors):
    for err in errors:
        print(f"error: {err}", file=sys.stderr)
    sys.exit(1)


def check_trace(path, require_spans, require_instants):
    errors = []
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)

    if not isinstance(doc, dict):
        fail([f"{path}: top level is not an object"])
    if doc.get("displayTimeUnit") not in ("ms", "ns"):
        errors.append(f"{path}: missing/invalid displayTimeUnit")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail([f"{path}: traceEvents is not an array"])

    seen_names = set()
    seen_instants = set()
    seen_non_meta = False
    for i, ev in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "i", "C", "M"):
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        for key in ("name", "pid", "tid"):
            if key not in ev:
                errors.append(f"{where}: missing {key!r}")
        if ph != "M" and not isinstance(ev.get("ts"), (int, float)):
            errors.append(f"{where}: missing numeric ts")
        if ph == "M":
            # The writer serializes metadata first so viewers name
            # processes before any span references them.
            if seen_non_meta:
                errors.append(f"{where}: metadata after span events")
            if ev.get("name") != "process_name":
                errors.append(f"{where}: unexpected metadata "
                              f"{ev.get('name')!r}")
        else:
            seen_non_meta = True
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: complete span needs dur >= 0")
            if ev.get("name") not in KNOWN_SPAN_NAMES:
                errors.append(f"{where}: unknown span name "
                              f"{ev.get('name')!r}")
            seen_names.add(ev.get("name"))
        if ph == "i":
            if ev.get("name") not in KNOWN_INSTANT_NAMES:
                errors.append(f"{where}: unknown instant "
                              f"{ev.get('name')!r}")
            seen_instants.add(ev.get("name"))

    for name in require_spans:
        if name not in seen_names:
            errors.append(f"{path}: required span {name!r} never emitted")
    for name in require_instants:
        if name not in seen_instants:
            errors.append(f"{path}: required instant {name!r} "
                          "never emitted")
    return errors, len(events)


def check_metrics(path):
    errors = []
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)

    snaps = doc.get("snapshots_s")
    metrics = doc.get("metrics")
    if not isinstance(snaps, list) or not isinstance(metrics, list):
        fail([f"{path}: needs snapshots_s and metrics arrays"])
    if snaps != sorted(snaps):
        errors.append(f"{path}: snapshots_s is not sorted")
    for m in metrics:
        name = m.get("name", "<unnamed>")
        if m.get("type") not in ("counter", "gauge", "histogram"):
            errors.append(f"{path}: {name}: unknown type {m.get('type')!r}")
            continue
        points = m.get("points")
        if not isinstance(points, list) or len(points) != len(snaps):
            errors.append(f"{path}: {name}: points out of step with "
                          "the snapshot axis")
            continue
        if m["type"] == "counter":
            if any(b < a for a, b in zip(points, points[1:])):
                errors.append(f"{path}: {name}: counter not monotone")
        if m["type"] == "histogram":
            bins = m.get("bins")
            if not all(isinstance(p, list) and len(p) == bins
                       for p in points):
                errors.append(f"{path}: {name}: bin arrays do not match "
                              "the declared bin count")
    return errors, len(snaps), len(metrics)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument("--metrics", help="windowed metrics JSON file")
    parser.add_argument("--require-spans", default="",
                        help="comma-separated span names that must appear")
    parser.add_argument("--require-instants", default="",
                        help="comma-separated instant names that must "
                             "appear")
    args = parser.parse_args()

    require = [s for s in args.require_spans.split(",") if s]
    require_i = [s for s in args.require_instants.split(",") if s]
    errors, num_events = check_trace(args.trace, require, require_i)
    summary = f"{args.trace}: {num_events} events ok"
    if args.metrics:
        merrors, num_snaps, num_metrics = check_metrics(args.metrics)
        errors += merrors
        summary += (f"; {args.metrics}: {num_metrics} metrics x "
                    f"{num_snaps} snapshots ok")
    if errors:
        fail(errors)
    print(summary)


if __name__ == "__main__":
    main()
